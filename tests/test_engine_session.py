"""Session behaviour: correctness vs. direct calls, caching, invalidation."""

import numpy as np
import pytest

from repro.core.cp import compute_causality, compute_causality_pdf
from repro.core.cr import compute_causality_certain
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine import (
    CausalityCertainSpec,
    CausalitySpec,
    KSkybandCausalitySpec,
    LRUCache,
    PdfCausalitySpec,
    PRSQSpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    Session,
    dataset_fingerprint,
    spec_from_dict,
    spec_to_dict,
)
from repro.prsq.query import (
    probabilistic_reverse_skyline,
    prsq_non_answers,
    prsq_probabilities,
)
from repro.rtopk.query import WeightSet, reverse_top_k
from repro.skyline.reverse import reverse_skyline
from repro.skyline.skyband import compute_causality_k_skyband, reverse_k_skyband
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject
from repro.uncertain.pdf import UniformBoxObject
from repro.geometry.rectangle import Rect

Q = (5000.0, 5000.0)
ALPHA = 0.5


@pytest.fixture(scope="module")
def uncertain_ds():
    return generate_uncertain_dataset(70, 2, seed=42)


@pytest.fixture(scope="module")
def certain_ds():
    return generate_certain_dataset(150, 2, seed=42)


class TestUncertainQueries:
    def test_prsq_matches_direct(self, uncertain_ds):
        session = Session(uncertain_ds)
        answers = session.execute(PRSQSpec(q=Q, alpha=ALPHA)).value
        assert answers == probabilistic_reverse_skyline(uncertain_ds, Q, ALPHA)
        nas = session.execute(PRSQSpec(q=Q, alpha=ALPHA, want="non_answers"))
        assert nas.value == prsq_non_answers(uncertain_ds, Q, ALPHA)
        probs = session.execute(PRSQSpec(q=Q, alpha=ALPHA, want="probabilities"))
        assert probs.value == prsq_probabilities(uncertain_ds, Q)

    def test_causality_matches_direct(self, uncertain_ds):
        session = Session(uncertain_ds)
        an = session.execute(PRSQSpec(q=Q, alpha=ALPHA, want="non_answers")).value[0]
        engine_result = session.execute(
            CausalitySpec(an=an, q=Q, alpha=ALPHA)
        ).value
        direct = compute_causality(uncertain_ds, an, Q, ALPHA)
        assert engine_result.same_causality(direct)

    def test_certain_spec_rejected_on_uncertain_session(self, uncertain_ds):
        session = Session(uncertain_ds)
        with pytest.raises(TypeError):
            session.execute(ReverseSkylineSpec(q=Q))


class TestCertainQueries:
    def test_reverse_skyline_both_kernel_paths(self, certain_ds):
        expected = reverse_skyline(certain_ds, Q)
        for use_numpy in (True, False):
            session = Session(certain_ds, use_numpy=use_numpy)
            assert session.execute(ReverseSkylineSpec(q=Q)).value == expected

    def test_k_skyband_both_kernel_paths(self, certain_ds):
        expected = reverse_k_skyband(certain_ds, Q, 3)
        for use_numpy in (True, False):
            session = Session(certain_ds, use_numpy=use_numpy)
            assert (
                session.execute(ReverseKSkybandSpec(q=Q, k=3)).value == expected
            )

    def test_cr_causality_matches_direct(self, certain_ds):
        session = Session(certain_ds)
        skyline = set(session.execute(ReverseSkylineSpec(q=Q)).value)
        an = next(oid for oid in certain_ds.ids() if oid not in skyline)
        engine_result = session.execute(CausalityCertainSpec(an=an, q=Q)).value
        assert engine_result.same_causality(
            compute_causality_certain(certain_ds, an, Q)
        )
        skyband_result = session.execute(
            KSkybandCausalitySpec(an=an, q=Q, k=1)
        ).value
        assert skyband_result.same_causality(
            compute_causality_k_skyband(certain_ds, an, Q, 1)
        )

    def test_reverse_top_k_matches_direct(self, certain_ds):
        weights = ((1.0, 0.3), (0.2, 1.0))
        session = Session(certain_ds)
        value = session.execute(
            ReverseTopKSpec(q=(800.0, 900.0), k=5, weights=weights)
        ).value
        users = WeightSet([list(w) for w in weights])
        assert value == reverse_top_k(certain_ds, users, (800.0, 900.0), 5)


class TestPdfSession:
    def _objects(self):
        return [
            UniformBoxObject("a", Rect([4.0, 4.0], [4.6, 4.6])),
            UniformBoxObject("b", Rect([4.2, 4.2], [4.9, 4.9])),
            UniformBoxObject("c", Rect([6.0, 1.0], [7.0, 2.0])),
        ]

    def test_matches_compute_causality_pdf(self):
        q, alpha = (5.0, 5.0), 0.5
        session = Session.from_pdf_objects(
            self._objects(), samples_per_object=32, seed=0
        )
        direct, _dataset = compute_causality_pdf(
            self._objects(),
            "a",
            q,
            alpha,
            samples_per_object=32,
            rng=np.random.default_rng(0),
        )
        engine_result = session.execute(
            PdfCausalitySpec(an="a", q=q, alpha=alpha)
        ).value
        assert engine_result.same_causality(direct)

    def test_pdf_spec_requires_pdf_session(self):
        session = Session(generate_uncertain_dataset(10, 2, seed=1))
        with pytest.raises(TypeError):
            session.execute(PdfCausalitySpec(an="a", q=(5.0, 5.0), alpha=0.5))

    def test_unknown_pdf_object(self):
        session = Session.from_pdf_objects(self._objects())
        with pytest.raises(KeyError):
            session.execute(PdfCausalitySpec(an="zzz", q=(5.0, 5.0), alpha=0.5))


class TestCaching:
    def test_hit_miss_accounting(self, uncertain_ds):
        session = Session(uncertain_ds)
        spec = PRSQSpec(q=Q, alpha=ALPHA)
        first = session.execute(spec)
        second = session.execute(spec)
        assert not first.cached and second.cached
        assert first.value == second.value
        stats = session.cache_stats()
        # Outer result + inner probability map on the miss; one outer hit.
        assert stats["misses"] == 2
        assert stats["hits"] == 1

    def test_probability_map_shared_across_alphas(self, uncertain_ds):
        session = Session(uncertain_ds)
        session.execute(PRSQSpec(q=Q, alpha=0.4))
        before = session.cache_stats()["hits"]
        session.execute(PRSQSpec(q=Q, alpha=0.8))
        after = session.cache_stats()
        # Different alpha: outer result misses but the alpha-independent
        # probability map hits.
        assert after["hits"] == before + 1

    def test_no_cache_session(self, uncertain_ds):
        for session in (
            Session(uncertain_ds, cache=None),
            Session(uncertain_ds, cache_size=0),  # same convention as the CLI
        ):
            spec = PRSQSpec(q=Q, alpha=ALPHA)
            assert not session.execute(spec).cached
            assert not session.execute(spec).cached
            assert session.cache_stats()["hits"] == 0

    def test_fingerprint_is_lazy(self):
        dataset = generate_uncertain_dataset(20, 2, seed=7)
        session = Session(dataset, build_index=False)
        assert dataset._content_digest is None  # not hashed until needed
        first = session.fingerprint
        assert dataset._content_digest == first == session.fingerprint

    def test_fingerprint_tracks_direct_dataset_mutation(self):
        # The dataset's mutation API is public: a session must never keep
        # serving results under the pre-mutation fingerprint, even when
        # the mutation bypassed Session.apply.
        dataset = generate_uncertain_dataset(12, 2, seed=9)
        session = Session(dataset)
        spec = PRSQSpec(q=Q, alpha=ALPHA, want="probabilities")
        session.query(spec)
        victim = dataset.ids()[0]
        dataset.delete_object(victim)
        outcome = session.query(spec)
        assert not outcome.run.cached
        assert victim not in outcome.value.probabilities

    def test_caller_mutation_cannot_poison_cache(self, uncertain_ds):
        session = Session(uncertain_ds)
        spec = PRSQSpec(q=Q, alpha=ALPHA)
        first = session.execute(spec).value
        first.clear()
        assert session.execute(spec).value  # still the cached answer set
        probs = session.prsq_probabilities(Q)
        probs.clear()
        assert session.prsq_probabilities(Q)

    def test_mismatch_error_is_repro_and_type_error(self, uncertain_ds):
        from repro.exceptions import ReproError, SpecMismatchError

        session = Session(uncertain_ds)
        with pytest.raises(SpecMismatchError) as excinfo:
            session.execute(ReverseSkylineSpec(q=Q))
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, TypeError)

    def test_lru_eviction(self, uncertain_ds):
        session = Session(uncertain_ds, cache=LRUCache(maxsize=2))
        for i in range(4):
            session.execute(PRSQSpec(q=(4000.0 + i, 5000.0), alpha=ALPHA))
        assert session.cache_stats()["evictions"] > 0
        assert len(session.cache) <= 2


class TestFingerprintInvalidation:
    def _tiny(self, shift=0.0):
        return UncertainDataset(
            [
                UncertainObject("u1", [[4.0 + shift, 4.0], [4.2, 4.1]]),
                UncertainObject("u2", [[4.5, 4.5]]),
                UncertainObject("u3", [[9.0, 1.0]]),
            ]
        )

    def test_fingerprint_sensitive_to_content(self):
        base = dataset_fingerprint(self._tiny())
        assert base == dataset_fingerprint(self._tiny())
        assert base != dataset_fingerprint(self._tiny(shift=1e-9))

    def test_fingerprint_field_boundaries_unambiguous(self):
        # Length-prefixed hashing: shifting bytes between adjacent fields
        # (name vs samples, sample count vs values) must change the hash.
        a = UncertainDataset([UncertainObject("u", [[1.0, 2.0]], name="ab")])
        b = UncertainDataset([UncertainObject("ua", [[1.0, 2.0]], name="b")])
        assert dataset_fingerprint(a) != dataset_fingerprint(b)
        one_of_two = UncertainDataset(
            [UncertainObject("u", [[1.0, 2.0], [1.0, 2.0]], [0.5, 0.5])]
        )
        assert dataset_fingerprint(a) != dataset_fingerprint(one_of_two)

    def test_shared_cache_across_sessions(self):
        cache = LRUCache(maxsize=64)
        spec = PRSQSpec(q=(5.0, 5.0), alpha=0.5)
        first = Session(self._tiny(), cache=cache)
        first.execute(spec)
        hits_after_first = cache.stats.hits

        # Same contents, new session object: the fingerprint matches, so the
        # shared cache serves the result.
        twin = Session(self._tiny(), cache=cache)
        assert twin.execute(spec).cached
        assert cache.stats.hits == hits_after_first + 1

        # Modified contents: same spec must MISS — never a stale answer.
        changed = Session(self._tiny(shift=2.0), cache=cache)
        outcome = changed.execute(spec)
        assert not outcome.cached

    def test_replace_dataset_invalidates(self):
        session = Session(self._tiny())
        spec = PRSQSpec(q=(5.0, 5.0), alpha=0.5, want="probabilities")
        before = session.execute(spec).value
        session.replace_dataset(self._tiny(shift=2.0))
        outcome = session.execute(spec)
        assert not outcome.cached
        assert outcome.value != before


class TestSpecLayer:
    def test_roundtrip_all_kinds(self):
        specs = [
            PRSQSpec(q=Q, alpha=0.6, want="probabilities"),
            CausalitySpec(an="17", q=Q, alpha=0.4),
            CausalitySpec(an=("composite", 1), q=Q, alpha=0.4),
            PdfCausalitySpec(an="a", q=Q, alpha=0.3),
            CausalityCertainSpec(an="an-1", q=Q),
            KSkybandCausalitySpec(an="an-1", q=Q, k=2),
            ReverseSkylineSpec(q=Q),
            ReverseKSkybandSpec(q=Q, k=3),
            ReverseTopKSpec(
                q=Q, k=2, weights=((1.0, 2.0),), user_ids=("u0",)
            ),
        ]
        for spec in specs:
            assert spec_from_dict(spec_to_dict(spec)) == spec
            assert hash(spec.cache_key()) == hash(spec.cache_key())

    def test_unhashable_fields_rejected(self):
        # JSON happily supplies lists; cache keys need hashable values.
        with pytest.raises(ValueError, match="hashable"):
            CausalitySpec(an=[1, 2], q=Q, alpha=0.5)
        with pytest.raises(ValueError, match="hashable"):
            spec_from_dict(
                {"kind": "causality_certain", "an": {"id": 3}, "q": [1, 2]}
            )
        with pytest.raises(ValueError, match="hashable"):
            ReverseTopKSpec(
                q=Q, k=1, weights=((1.0, 1.0),), user_ids=([1],)
            )

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            PRSQSpec(q=Q, alpha=0.0)
        with pytest.raises(ValueError):
            PRSQSpec(q=Q, want="everything")
        with pytest.raises(ValueError):
            ReverseKSkybandSpec(q=Q, k=0)
        # Malformed JSON payload shapes must raise ValueError, not TypeError.
        with pytest.raises(ValueError, match="sequence of numbers"):
            PRSQSpec(q=5000)
        with pytest.raises(ValueError, match="number"):
            PRSQSpec(q=Q, alpha="0.5")
        with pytest.raises(ValueError, match="integer"):
            ReverseKSkybandSpec(q=Q, k="2")
        with pytest.raises(ValueError):
            ReverseTopKSpec(q=Q, k=1, weights=())
        with pytest.raises(ValueError):
            spec_from_dict({"kind": "nope"})
        with pytest.raises(ValueError):
            spec_from_dict({"kind": "prsq", "q": [1, 2], "bogus": 1})
        with pytest.raises(ValueError, match="config field"):
            spec_from_dict(
                {"kind": "causality", "an": "x", "q": [1, 2],
                 "config": {"use_lemma7": True}}
            )

    def test_plan_explain(self, uncertain_ds):
        session = Session(uncertain_ds)
        plan = session.plan(PRSQSpec(q=Q, alpha=ALPHA))
        text = plan.explain()
        assert "prsq" in text and "1." in text

    def test_large_dataset_falls_back_to_index_path(self, certain_ds, monkeypatch):
        import repro.engine.plan as plan_module

        expected = reverse_skyline(certain_ds, Q)
        monkeypatch.setattr(plan_module, "VECTORIZED_MAX_N", 1)
        session = Session(certain_ds)  # n > 1: planner must pick the R-tree path
        assert session.execute(ReverseSkylineSpec(q=Q)).value == expected
        assert session.execute(ReverseKSkybandSpec(q=Q, k=2)).value == (
            reverse_k_skyband(certain_ds, Q, 2)
        )


class TestCertainDatasetFingerprint:
    def test_certain_and_uncertain_differ(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        certain = CertainDataset(points)
        uncertain = UncertainDataset(
            [UncertainObject(i, [points[i]], [1.0]) for i in range(2)]
        )
        assert dataset_fingerprint(certain) != dataset_fingerprint(uncertain)
