"""Unit tests for FMCS (Algorithm 2) and its pruning bound."""

import itertools

import numpy as np
import pytest

from repro.core.fmcs import FMCSOutcome, find_minimal_contingency_set
from repro.prsq.oracle import MembershipOracle
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from tests.conftest import make_uncertain_dataset


def build_instance(rng, n=7):
    """A random CR2PRSQ instance: returns (oracle, candidate ids) for the
    first non-answer found, or None."""
    ds = make_uncertain_dataset(rng, n=n, dims=2)
    q = rng.uniform(0, 10, size=2)
    for oid in ds.ids():
        oracle = MembershipOracle(ds, oid, q, alpha=0.5)
        if oracle.is_non_answer() and oracle.influencer_ids:
            return oracle
    return None


def reference_minimal(oracle, cc):
    """Brute-force minimal contingency set size over all influencer subsets."""
    pool = [oid for oid in oracle.influencer_ids if oid != cc]
    for size in range(len(pool) + 1):
        for combo in itertools.combinations(pool, size):
            if oracle.is_contingency_set(frozenset(combo), cc):
                return size
    return None


class TestFMCSBasics:
    def test_validates_cc_exclusion(self, rng):
        oracle = build_instance(rng)
        assert oracle is not None
        cc = oracle.influencer_ids[0]
        with pytest.raises(ValueError):
            find_minimal_contingency_set(oracle, cc, [cc], frozenset())
        with pytest.raises(ValueError):
            find_minimal_contingency_set(oracle, cc, [], frozenset({cc}))

    def test_counterfactual_found_at_size_zero(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("only", [[2.4, 2.4]]),
            ]
        )
        oracle = MembershipOracle(ds, "an", [3.0, 3.0], alpha=0.5)
        outcome = find_minimal_contingency_set(oracle, "only", [], frozenset())
        assert outcome.gamma == frozenset()
        assert outcome.responsibility == 1.0

    def test_not_a_cause_returns_none(self):
        # "weak" has one far sample; removing it never changes membership.
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("blockerA", [[2.3, 2.3]]),
                UncertainObject("blockerB", [[2.5, 2.5]]),
            ]
        )
        # an is blocked by both; each blocker alone is not counterfactual
        # but is a cause with the other as contingency; verify FMCS agrees.
        oracle = MembershipOracle(ds, "an", [3.0, 3.0], alpha=0.5)
        out = find_minimal_contingency_set(
            oracle, "blockerA", ["blockerB"], frozenset()
        )
        assert out.gamma == frozenset({"blockerB"})
        assert out.responsibility == pytest.approx(0.5)

    def test_outcome_dataclass(self):
        out = FMCSOutcome(gamma=None, subsets_examined=5)
        assert not out.is_cause
        assert out.responsibility == 0.0


class TestMinimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        oracle = build_instance(rng)
        if oracle is None:
            pytest.skip("no non-answer in this draw")
        for cc in oracle.influencer_ids:
            pool = [oid for oid in oracle.influencer_ids if oid != cc]
            outcome = find_minimal_contingency_set(oracle, cc, pool, frozenset())
            expected = reference_minimal(oracle, cc)
            if expected is None:
                assert outcome.gamma is None
            else:
                assert outcome.gamma is not None
                assert len(outcome.gamma) == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_bound_prune_invariant(self, seed):
        """Disabling the survival-product bound never changes the result."""
        rng = np.random.default_rng(seed + 100)
        oracle = build_instance(rng)
        if oracle is None:
            pytest.skip("no non-answer in this draw")
        for cc in oracle.influencer_ids:
            pool = [oid for oid in oracle.influencer_ids if oid != cc]
            fast = find_minimal_contingency_set(
                oracle, cc, pool, frozenset(), use_bound_prune=True
            )
            slow = find_minimal_contingency_set(
                oracle, cc, pool, frozenset(), use_bound_prune=False
            )
            assert (fast.gamma is None) == (slow.gamma is None)
            if fast.gamma is not None:
                assert len(fast.gamma) == len(slow.gamma)
            assert fast.subsets_examined <= slow.subsets_examined

    @pytest.mark.parametrize("seed", range(5))
    def test_known_bound_limits_search(self, seed):
        """With a Lemma-6 bound equal to the true minimum, FMCS must not
        find anything (nothing strictly smaller exists)."""
        rng = np.random.default_rng(seed + 200)
        oracle = build_instance(rng)
        if oracle is None:
            pytest.skip("no non-answer in this draw")
        for cc in oracle.influencer_ids:
            expected = reference_minimal(oracle, cc)
            if expected is None:
                continue
            pool = [oid for oid in oracle.influencer_ids if oid != cc]
            outcome = find_minimal_contingency_set(
                oracle, cc, pool, frozenset(), known_bound=expected
            )
            assert outcome.gamma is None
            # And with a looser bound it finds the true minimum again.
            outcome2 = find_minimal_contingency_set(
                oracle, cc, pool, frozenset(), known_bound=expected + 1
            )
            assert outcome2.gamma is not None and len(outcome2.gamma) == expected

    def test_gamma1_forced_into_result(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("blocker", [[2.2, 2.2]]),
                # Dominates with probability 2/3: with the blocker gone,
                # Pr(an) = 1/3 < alpha, so an stays a non-answer until
                # "partial" is removed too.
                UncertainObject("partial", [[2.6, 2.6], [2.7, 2.7], [9.0, 9.0]]),
            ]
        )
        oracle = MembershipOracle(ds, "an", [3.0, 3.0], alpha=0.5)
        gamma1 = frozenset(oracle.certain_blockers())
        assert gamma1 == frozenset({"blocker"})
        out = find_minimal_contingency_set(oracle, "partial", [], gamma1)
        assert out.gamma == frozenset({"blocker"})
        assert gamma1 <= out.gamma
