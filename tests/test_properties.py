"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.cp import CPConfig, compute_causality
from repro.core.naive import brute_force_causality
from repro.geometry.dominance import (
    dominance_rectangle,
    dominates,
    dynamically_dominates,
)
from repro.geometry.rectangle import Rect
from repro.index.bulk import bulk_load
from repro.prsq.oracle import MembershipOracle
from repro.prsq.probability import reverse_skyline_probability
from repro.skyline.classic import skyline_indices
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from repro.uncertain.possible_worlds import (
    reverse_skyline_probability_bruteforce,
)

coordinate = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coordinate, coordinate)

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def uncertain_dataset_strategy(max_objects=5, max_samples=3):
    object_strategy = st.lists(point2d, min_size=1, max_size=max_samples)
    return st.lists(object_strategy, min_size=2, max_size=max_objects).map(
        lambda rows: UncertainDataset(
            [UncertainObject(i, np.array(samples)) for i, samples in enumerate(rows)]
        )
    )


class TestDominanceProperties:
    @given(a=point2d, b=point2d)
    def test_classic_antisymmetry(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))

    @given(a=point2d, b=point2d, c=point2d)
    def test_classic_transitivity(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(p1=point2d, p2=point2d, center=point2d)
    def test_dynamic_antisymmetry(self, p1, p2, center):
        assert not (
            dynamically_dominates(p1, p2, center)
            and dynamically_dominates(p2, p1, center)
        )

    @given(p1=point2d, p2=point2d, p3=point2d, center=point2d)
    def test_dynamic_transitivity(self, p1, p2, p3, center):
        if dynamically_dominates(p1, p2, center) and dynamically_dominates(
            p2, p3, center
        ):
            assert dynamically_dominates(p1, p3, center)

    @given(p=point2d, s=point2d, q=point2d)
    def test_dominance_rectangle_complete(self, p, s, q):
        if dynamically_dominates(p, q, s):
            assert dominance_rectangle(s, q).contains_point(p)


class TestSkylineProperties:
    @given(
        st.lists(point2d, min_size=1, max_size=25).map(np.array)
    )
    def test_skyline_members_not_dominated(self, points):
        sky = skyline_indices(points)
        assert sky  # a non-empty set always has a skyline
        for i in sky:
            assert not any(
                dominates(points[j], points[i]) for j in range(len(points)) if j != i
            )

    @given(
        st.lists(point2d, min_size=1, max_size=25).map(np.array)
    )
    def test_non_members_dominated(self, points):
        sky = set(skyline_indices(points))
        for i in set(range(len(points))) - sky:
            assert any(dominates(points[j], points[i]) for j in range(len(points)))


class TestRTreeProperties:
    @SLOW
    @given(
        st.lists(point2d, min_size=1, max_size=60),
        st.tuples(point2d, point2d),
    )
    def test_range_query_equals_linear_scan(self, points, window_corners):
        (x1, y1), (x2, y2) = window_corners
        window = Rect([min(x1, x2), min(y1, y2)], [max(x1, x2), max(y1, y2)])
        tree = bulk_load(
            [(np.array(p), i) for i, p in enumerate(points)], dims=2, max_entries=4
        )
        expected = sorted(
            i for i, p in enumerate(points) if window.contains_point(np.array(p))
        )
        assert sorted(tree.range_search(window)) == expected

    @SLOW
    @given(st.lists(point2d, min_size=1, max_size=60))
    def test_bulk_load_valid_structure(self, points):
        tree = bulk_load(
            [(np.array(p), i) for i, p in enumerate(points)], dims=2, max_entries=4
        )
        tree.validate(allow_underfull=True)


class TestProbabilityProperties:
    @SLOW
    @given(uncertain_dataset_strategy(), point2d)
    def test_eq2_matches_possible_worlds(self, dataset, q):
        q = np.array(q)
        for obj in dataset:
            analytic = reverse_skyline_probability(
                dataset, obj.oid, q, use_index=False
            )
            brute = reverse_skyline_probability_bruteforce(dataset, obj.oid, q)
            assert analytic == pytest.approx(brute, abs=1e-9)

    @SLOW
    @given(uncertain_dataset_strategy(max_objects=5), point2d)
    def test_removal_monotone(self, dataset, q):
        q = np.array(q)
        target = dataset.ids()[0]
        oracle = MembershipOracle(dataset, target, q, alpha=0.5)
        others = [oid for oid in dataset.ids() if oid != target]
        previous = oracle.probability()
        removed = set()
        for oid in others:
            removed.add(oid)
            current = oracle.probability(frozenset(removed))
            assert current >= previous - 1e-12
            previous = current


class TestCausalityProperties:
    @SLOW
    @given(
        uncertain_dataset_strategy(max_objects=5, max_samples=2),
        point2d,
        st.sampled_from([0.4, 0.7, 1.0]),
    )
    def test_cp_equals_brute_force(self, dataset, q, alpha):
        q = np.array(q)
        target = dataset.ids()[0]
        pr = reverse_skyline_probability(dataset, target, q, use_index=False)
        assume(pr < alpha)
        cp = compute_causality(dataset, target, q, alpha)
        bf = brute_force_causality(dataset, target, q, alpha)
        assert cp.same_causality(bf)

    @SLOW
    @given(
        uncertain_dataset_strategy(max_objects=5, max_samples=2),
        point2d,
    )
    def test_responsibilities_in_unit_interval(self, dataset, q):
        q = np.array(q)
        target = dataset.ids()[0]
        pr = reverse_skyline_probability(dataset, target, q, use_index=False)
        assume(pr < 0.5)
        result = compute_causality(dataset, target, q, 0.5)
        for cause in result.causes.values():
            assert 0.0 < cause.responsibility <= 1.0
            assert target not in cause.contingency_set
            assert cause.oid not in cause.contingency_set

    @SLOW
    @given(
        uncertain_dataset_strategy(max_objects=5, max_samples=2),
        point2d,
    )
    def test_counterfactuals_have_responsibility_one(self, dataset, q):
        q = np.array(q)
        target = dataset.ids()[0]
        oracle = MembershipOracle(dataset, target, q, alpha=0.5)
        assume(oracle.is_non_answer())
        result = compute_causality(dataset, target, q, 0.5)
        for oid in result.cause_ids():
            if oracle.is_answer({oid}):
                assert result.responsibility(oid) == 1.0
