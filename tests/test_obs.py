"""The ``repro.obs`` subsystem: spans, metrics, and their wiring.

Covers the tentpole guarantees: deterministic span trees under a fake
clock (byte-stable NDJSON), the shared no-op span on the disabled path,
the metrics snapshot/diff/merge protocol (including the ParallelExecutor
worker hand-back), a ``run.phases`` breakdown for every registered query
family, and the CLI ``--trace`` / ``stats`` surfaces.
"""

import io
import json

import pytest

from repro import obs
from repro.api import connect, connect_pdf
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine.spec import PRSQSpec
from repro.geometry.rectangle import Rect
from repro.index.stats import AccessSnapshot, AccessStats
from repro.obs.trace import _NULL_SPAN
from repro.uncertain.object import UncertainObject
from repro.uncertain.pdf import UniformBoxObject

Q = (5000.0, 5000.0)


class FakeClock:
    """Deterministic monotonic clock: 0, 1, 2, ... seconds."""

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self._tick = start
        self._step = step

    def __call__(self) -> float:
        tick = self._tick
        self._tick += self._step
        return tick


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.registry().reset()
    yield
    obs.registry().reset()


@pytest.fixture(scope="module")
def uncertain_ds():
    return generate_uncertain_dataset(40, 2, seed=7)


@pytest.fixture(scope="module")
def certain_ds():
    return generate_certain_dataset(60, 2, seed=7)


def _nested_program(tracer):
    """One fixed span program used by the determinism tests."""
    with tracer.activate():
        with obs.span("query", kind="prsq") as root:
            with obs.span("filter", kernel="packed") as f:
                with obs.span("index-search", windows=3):
                    pass
                f.set(candidates=5)
            with obs.span("refine", alpha=0.5):
                obs.annotate(causes=2)
    return root


class TestSpanTree:
    def test_nesting_and_order(self):
        tracer = obs.Tracer(clock=FakeClock())
        root = _nested_program(tracer)
        assert [c.name for c in root.children] == ["filter", "refine"]
        assert [c.name for c in root.children[0].children] == ["index-search"]
        assert tracer.drain() == [root]
        assert tracer.drain() == []  # drain clears

    def test_fake_clock_durations(self):
        root = _nested_program(obs.Tracer(clock=FakeClock()))
        # Ticks: query@0, filter@1, index@2..3, filter ends@4, refine@5..6,
        # query ends@7.
        assert root.start == 0.0 and root.end == 7.0
        assert root.duration_s == 7.0
        assert root.children[0].duration_s == 3.0
        assert root.children[0].children[0].duration_s == 1.0
        assert root.children[1].duration_s == 1.0

    def test_attributes_and_annotate(self):
        root = _nested_program(obs.Tracer(clock=FakeClock()))
        assert root.attributes == {"kind": "prsq"}
        assert root.children[0].attributes == {
            "kernel": "packed",
            "candidates": 5,
        }
        assert root.children[1].attributes == {"alpha": 0.5, "causes": 2}

    def test_exception_marks_span_and_propagates(self):
        tracer = obs.Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.activate():
                with obs.span("query"):
                    raise RuntimeError("boom")
        [root] = tracer.drain()
        assert root.attributes["error"] == "RuntimeError"
        assert root.end is not None

    def test_phase_totals_excludes_root_and_same_name_nesting(self):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.activate():
            with obs.span("query") as root:
                with obs.span("probability"):
                    with obs.span("probability"):  # nested same name
                        pass
                with obs.span("filter"):
                    pass
        totals = root.phase_totals()
        assert "query" not in totals
        assert list(totals) == sorted(totals)
        # Outer probability spans ticks 1..4 (inner 2..3 not double counted).
        assert totals["probability"] == 3.0
        assert totals["filter"] == 1.0

    def test_to_dict_from_dict_roundtrip(self):
        root = _nested_program(obs.Tracer(clock=FakeClock()))
        clone = obs.Span.from_dict(root.to_dict())
        assert obs.span_to_line(clone) == obs.span_to_line(root)


class TestDisabledPath:
    def test_null_span_is_shared_singleton(self):
        assert obs.active_tracer() is None
        assert obs.span("filter") is _NULL_SPAN
        assert obs.span("refine", anything=1) is _NULL_SPAN

    def test_null_span_noops(self):
        with obs.span("filter") as sp:
            assert sp.set(candidates=3) is sp
        obs.annotate(ignored=True)  # no ambient tracer: silently dropped

    def test_activation_restores_previous(self):
        tracer = obs.Tracer()
        with tracer.activate():
            assert obs.active_tracer() is tracer
            assert isinstance(obs.span("x"), obs.Span)
        assert obs.active_tracer() is None


class TestNDJSON:
    def test_byte_stable_across_runs(self):
        lines = [
            obs.span_to_line(_nested_program(obs.Tracer(clock=FakeClock())))
            for _ in range(2)
        ]
        assert lines[0] == lines[1]
        payload = json.loads(lines[0])
        assert payload["name"] == "query"
        assert payload["duration"] == 7.0

    def test_sink_streams_one_line_per_root(self):
        sink = io.StringIO()
        tracer = obs.Tracer(sink=sink, clock=FakeClock())
        _nested_program(tracer)
        assert tracer.finished == []  # keep defaults off with a sink
        [line] = sink.getvalue().splitlines()
        assert json.loads(line)["name"] == "query"

    def test_export_ndjson(self):
        tracer = obs.Tracer(clock=FakeClock())
        _nested_program(tracer)
        out = io.StringIO()
        assert obs.export_ndjson(tracer.drain(), out) == 1

    def test_session_trace_is_byte_stable(self):
        def one_run():
            dataset = generate_uncertain_dataset(25, 2, seed=11)
            tracer = obs.Tracer(clock=FakeClock())
            client = connect(dataset, cache_size=0, trace=tracer)
            assert client.prsq(Q, alpha=0.5).ok
            [root] = tracer.drain()
            return obs.span_to_line(root)

        assert one_run() == one_run()

    def test_as_tracer_coercions(self, tmp_path):
        assert obs.as_tracer(None) is None
        tracer = obs.Tracer()
        assert obs.as_tracer(tracer) is tracer
        assert obs.as_tracer(True).sink is None
        sink = io.StringIO()
        assert obs.as_tracer(sink).sink is sink
        path = tmp_path / "trace.ndjson"
        owned = obs.as_tracer(str(path))
        assert owned.sink is not None
        owned.close()
        owned.close()  # idempotent
        assert owned.sink is None


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(4.5)
        hist = reg.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 4.5}
        assert snap["histograms"]["h"]["counts"] == [1, 1, 1]
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["sum"] == pytest.approx(55.5)

    def test_get_or_create_is_stable(self):
        reg = obs.MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_diff_drops_unchanged(self):
        reg = obs.MetricsRegistry()
        reg.counter("a").inc()
        before = reg.snapshot()
        reg.counter("b").inc(5)
        delta = obs.MetricsRegistry.diff(before, reg.snapshot())
        assert delta["counters"] == {"b": 5}

    def test_merge_accumulates(self):
        reg = obs.MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        delta = obs.MetricsRegistry.diff(
            obs.MetricsRegistry().snapshot(), reg.snapshot()
        )
        target = obs.MetricsRegistry()
        target.merge(delta)
        target.merge(delta)
        snap = target.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["histograms"]["h"]["counts"] == [2, 0]

    def test_merge_bucket_mismatch_raises(self):
        reg = obs.MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        delta = obs.MetricsRegistry.diff(
            obs.MetricsRegistry().snapshot(), reg.snapshot()
        )
        target = obs.MetricsRegistry()
        target.histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError, match="bucket"):
            target.merge(delta)

    def test_histogram_buckets_must_increase(self):
        with pytest.raises(ValueError):
            obs.MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_reset(self):
        reg = obs.MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestQueryPhases:
    """Every registered family exposes a phase breakdown when traced."""

    def _phases(self, result):
        assert result.ok
        assert result.run.phases, f"no phases for {result.kind}"
        return result.run.phases

    def test_uncertain_families(self, uncertain_ds):
        client = connect(uncertain_ds, trace=True)
        non_answers = client.prsq(Q, alpha=0.5, want="non_answers")
        assert {"filter", "probability"} <= set(self._phases(non_answers))
        blame = client.causality(an=non_answers.value.ids[0], q=Q, alpha=0.5)
        assert {"filter", "refine"} <= set(self._phases(blame))
        inserted = client.insert(
            UncertainObject("obs-new", [[9500.0, 9500.0]])
        )
        assert "apply-delta" in self._phases(inserted)

    def test_pdf_family(self):
        objects = [
            UniformBoxObject("a", Rect([4.0, 4.0], [4.6, 4.6])),
            UniformBoxObject("b", Rect([4.2, 4.2], [4.9, 4.9])),
        ]
        client = connect_pdf(objects, samples_per_object=16, seed=0, trace=True)
        env = client.pdf_causality(an="a", q=(5.0, 5.0), alpha=0.5)
        assert "pdf-windows" in self._phases(env)

    def test_certain_families(self, certain_ds):
        client = connect(certain_ds, trace=True)
        sky = client.reverse_skyline(Q)
        assert "filter" in self._phases(sky)
        band = client.reverse_k_skyband(Q, k=2)
        assert "filter" in self._phases(band)
        topk = client.reverse_top_k(
            (800.0, 900.0), k=5, weights=((1.0, 0.3), (0.2, 1.0))
        )
        assert "refine" in self._phases(topk)
        an = next(
            oid for oid in certain_ds.ids() if oid not in set(sky.value.ids)
        )
        assert {"filter", "refine"} <= set(
            self._phases(client.causality_certain(an=an, q=Q))
        )
        assert {"filter", "refine"} <= set(
            self._phases(client.k_skyband_causality(an=an, q=Q, k=1))
        )

    def test_untraced_run_has_no_phases(self, uncertain_ds):
        client = connect(uncertain_ds)
        env = client.prsq(Q, alpha=0.5)
        assert env.ok and env.run.phases is None

    def test_cache_hit_records_lookup_time(self, uncertain_ds):
        client = connect(uncertain_ds, trace=True)
        first = client.prsq(Q, alpha=0.45)
        second = client.prsq(Q, alpha=0.45)
        assert not first.run.cached and second.run.cached
        assert second.run.elapsed_s > 0.0
        assert "cache-lookup" in second.run.phases
        assert "probability" not in second.run.phases  # probe only

    def test_phases_roundtrip_through_envelope_dict(self, uncertain_ds):
        from repro.api import QueryResult

        client = connect(uncertain_ds, trace=True)
        env = client.prsq(Q, alpha=0.5)
        back = QueryResult.from_dict(json.loads(json.dumps(env.to_dict())))
        assert back.run.phases == env.run.phases

    def test_query_metrics_recorded(self, uncertain_ds):
        client = connect(uncertain_ds)
        client.prsq(Q, alpha=0.5)
        client.prsq(Q, alpha=0.5)
        snap = client.metrics()
        assert snap["counters"]["query.prsq.count"] == 2
        assert snap["counters"]["cache.result.hits"] == 1
        assert snap["counters"]["cache.result.misses"] == 1
        hist = snap["histograms"]["query.prsq.latency_s"]
        assert hist["count"] == 2


class TestExecutorMerge:
    def test_parallel_workers_merge_metrics_and_spans(self, uncertain_ds):
        tracer = obs.Tracer()
        client = connect(uncertain_ds, cache_size=0, trace=tracer)
        batch = client.batch().extend(
            PRSQSpec(q=(4800.0 + 40.0 * i, 5100.0), alpha=0.5)
            for i in range(4)
        )
        envelopes = batch.run(workers=2)
        assert all(e.ok for e in envelopes)
        # Worker-side phases ride back inside each outcome...
        assert all(e.run.phases for e in envelopes)
        # ...and the full span trees are ingested into the parent tracer.
        roots = tracer.drain()
        assert len(roots) == 4
        assert {root.name for root in roots} == {"query"}
        # The batch delta aggregates both workers' registries.
        merged = batch.metrics()
        assert merged["counters"]["query.prsq.count"] == 4
        assert merged["histograms"]["query.prsq.latency_s"]["count"] == 4
        # And the same delta landed in the process-global registry.
        assert (
            obs.registry().snapshot()["counters"]["query.prsq.count"] == 4
        )

    def test_serial_batch_reports_metrics_delta(self, uncertain_ds):
        client = connect(uncertain_ds, cache_size=0)
        batch = client.batch().prsq(Q, alpha=0.3).prsq(Q, alpha=0.7)
        assert batch.metrics() is None  # nothing ran yet
        assert all(e.ok for e in batch.run())
        assert batch.metrics()["counters"]["query.prsq.count"] == 2

    def test_untraced_parallel_run_stays_untraced(self, uncertain_ds):
        client = connect(uncertain_ds, cache_size=0)
        envelopes = (
            client.batch()
            .extend(
                PRSQSpec(q=(4800.0 + 40.0 * i, 5100.0), alpha=0.5)
                for i in range(4)
            )
            .run(workers=2)
        )
        assert all(e.ok and e.run.phases is None for e in envelopes)


class TestAccessStats:
    def test_marks_attribute_gone(self):
        stats = AccessStats()
        assert not hasattr(stats, "_marks")

    def test_snapshot_and_subtract(self):
        stats = AccessStats()
        stats.record_node(is_leaf=False)
        stats.record_node(is_leaf=True)
        before = stats.snapshot()
        assert isinstance(before, AccessSnapshot)
        stats.record_node(is_leaf=False)
        stats.record_query()
        delta = stats.snapshot() - before
        assert delta.node_accesses == 1
        assert delta.leaf_accesses == 0
        assert delta.queries == 1
        assert delta.as_dict()["node_accesses"] == 1

    def test_measure_still_scopes_deltas(self):
        stats = AccessStats()
        stats.record_node(is_leaf=False)
        with stats.measure() as window:
            stats.record_node(is_leaf=True)
            stats.record_node(is_leaf=True)
        assert window.node_accesses == 2
        assert window.leaf_accesses == 2


class TestCLISurfaces:
    @pytest.fixture
    def uncertain_csv(self, tmp_path):
        from repro.io.cli import main

        data = tmp_path / "data.csv"
        rc = main(
            ["generate", "--kind", "uncertain", "--n", "30", "--dims", "2",
             "--seed", "5", "--out", str(data)]
        )
        assert rc == 0
        return data

    @pytest.fixture
    def queries_json(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    {"kind": "prsq", "q": [5000, 5000], "alpha": 0.5},
                    {"kind": "prsq", "q": [4500, 5500], "alpha": 0.6},
                ]
            )
        )
        return path

    def test_batch_trace_writes_ndjson(
        self, tmp_path, uncertain_csv, queries_json, capsys
    ):
        from repro.io.cli import main

        trace = tmp_path / "trace.ndjson"
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries",
             str(queries_json), "--stream", "--trace", str(trace)]
        )
        captured = capsys.readouterr()
        assert rc == 0
        lines = trace.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            root = json.loads(line)
            assert root["name"] == "query"
            assert root["attrs"]["kind"] == "prsq"
            assert root["children"]
        assert f"trace -> {trace}" in captured.err
        # The streamed envelopes carry the same breakdown.
        for out_line in captured.out.splitlines():
            assert json.loads(out_line)["run"]["phases"]

    def test_stats_subcommand_prints_registry(
        self, uncertain_csv, queries_json, capsys
    ):
        from repro.io.cli import main

        rc = main(
            ["stats", "--data", str(uncertain_csv), "--queries",
             str(queries_json)]
        )
        captured = capsys.readouterr()
        assert rc == 0
        snap = json.loads(captured.out)
        assert snap["counters"]["query.prsq.count"] == 2
        assert "query.prsq.latency_s" in snap["histograms"]
        assert "2 queries" in captured.err


class TestReportingProvenance:
    def test_provenance_keys(self):
        from repro.bench.reporting import provenance

        info = provenance()
        for key in (
            "git_sha", "git_dirty", "timestamp", "platform", "python", "numpy"
        ):
            assert key in info
        assert info["numpy"]  # numpy is installed in the test env

    def test_json_report_embeds_provenance(self, tmp_path):
        from repro.bench.reporting import write_json_report

        path = tmp_path / "BENCH_x.json"
        payload = write_json_report(path, "x", rows=[{"a": 1}])
        assert payload["provenance"]["python"]
        on_disk = json.loads(path.read_text())
        assert on_disk["provenance"]["timestamp"]
