"""Sharded engine core: partitioning, routing, index parity, plumbing.

Deterministic counterpart to the Hypothesis parity suite
(``test_sharded_parity.py``): each test pins one concrete contract of the
STR-sharded stack — :func:`~repro.index.bulk.str_partition` coverage,
:class:`~repro.uncertain.sharded.PartitionLayout` digests,
:class:`~repro.index.sharded.ShardedIndex` hit-set parity, delta routing
and rebalance triggers, layout-aware cache keys, executor payload
round-trips, :class:`~repro.engine.executor.ShardScatter` freshness, and
the serve/CLI surfaces.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.engine import (
    DatasetDelta,
    LRUCache,
    ParallelExecutor,
    PRSQSpec,
    ReverseSkylineSpec,
    Session,
    ShardScatter,
)
from repro.geometry.rectangle import Rect
from repro.index import ShardedIndex, str_partition
from repro.io.cli import main
from repro.uncertain import (
    CertainDataset,
    PartitionLayout,
    ShardedCertainDataset,
    ShardedDataset,
    UncertainDataset,
    UncertainObject,
    shard_dataset,
)

from tests.conftest import make_uncertain_dataset


def _windows(rng, count, dims=2, domain=10.0, extent=1.5):
    out = []
    for _ in range(count):
        lo = rng.uniform(0.0, domain - extent, size=dims)
        out.append(Rect(lo, lo + rng.uniform(0.1, extent, size=dims)))
    return out


# ----------------------------------------------------------------------
# str_partition
# ----------------------------------------------------------------------
class TestStrPartition:
    def test_partitions_cover_disjointly(self, rng):
        centers = rng.uniform(0.0, 10.0, size=(97, 3))
        groups = str_partition(centers, 8)
        assert len(groups) == 8
        assert all(g.size for g in groups)
        combined = np.concatenate(groups)
        assert sorted(combined.tolist()) == list(range(97))

    def test_deterministic(self, rng):
        centers = rng.uniform(0.0, 10.0, size=(50, 2))
        a = str_partition(centers, 4)
        b = str_partition(centers.copy(), 4)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_duplicate_centers_still_fill_every_group(self):
        centers = np.zeros((20, 2))  # fully degenerate: one point
        groups = str_partition(centers, 5)
        assert len(groups) == 5
        assert all(g.size for g in groups)
        assert sorted(np.concatenate(groups).tolist()) == list(range(20))

    def test_more_groups_than_points_clamps_to_n(self):
        groups = str_partition(np.zeros((3, 2)), 4)
        assert len(groups) == 3
        assert all(g.size == 1 for g in groups)


# ----------------------------------------------------------------------
# PartitionLayout
# ----------------------------------------------------------------------
class TestPartitionLayout:
    def test_digest_stable_and_sensitive(self):
        layout = PartitionLayout(shards=(("a", "b"), ("c",)), requested=2)
        same = PartitionLayout(shards=(("a", "b"), ("c",)), requested=2)
        assert layout.digest == same.digest
        moved = PartitionLayout(shards=(("a",), ("b", "c")), requested=2)
        assert layout.digest != moved.digest
        rerequested = PartitionLayout(shards=(("a", "b"), ("c",)), requested=3)
        assert layout.digest != rerequested.digest

    def test_assignment_roundtrip(self, rng):
        dataset = make_uncertain_dataset(rng, 30)
        sharded = shard_dataset(dataset, 4)
        clone = shard_dataset(
            UncertainDataset(dataset.objects()),
            4,
            assignment=sharded.layout.assignment(),
        )
        assert clone.layout_digest() == sharded.layout_digest()
        assert [s.ids() for s in clone.shards()] == [
            s.ids() for s in sharded.shards()
        ]


# ----------------------------------------------------------------------
# ShardedDataset structure
# ----------------------------------------------------------------------
class TestShardedDataset:
    def test_shards_partition_the_dataset(self, rng):
        dataset = make_uncertain_dataset(rng, 40)
        sharded = shard_dataset(dataset, 8)
        assert sharded.shard_count == 8
        ids = [oid for shard in sharded.shards() for oid in shard.ids()]
        assert sorted(ids, key=repr) == sorted(dataset.ids(), key=repr)

    def test_content_digest_matches_unsharded(self, rng):
        dataset = make_uncertain_dataset(rng, 25)
        sharded = shard_dataset(UncertainDataset(dataset.objects()), 4)
        # the content digest names *what the data is*, not the partition
        assert sharded.content_digest() == dataset.content_digest()
        assert dataset.layout_digest() is None
        assert sharded.layout_digest() is not None

    def test_shard_digest_varies_with_k(self, rng):
        objects = make_uncertain_dataset(rng, 24).objects()
        k2 = ShardedDataset(objects, shards=2)
        k4 = ShardedDataset(objects, shards=4)
        assert k2.layout_digest() != k4.layout_digest()
        assert k2.shard_digest() != k4.shard_digest()
        assert k2.content_digest() == k4.content_digest()

    def test_small_dataset_caps_shard_count(self):
        objects = [
            UncertainObject(i, [[float(i), float(i)]]) for i in range(3)
        ]
        sharded = ShardedDataset(objects, shards=8)
        assert sharded.requested_shards == 8
        assert 1 <= sharded.shard_count <= 3
        assert all(len(s) for s in sharded.shards())

    def test_certain_variant_keeps_points_synced(self, rng):
        points = rng.uniform(0.0, 10.0, size=(20, 2))
        sharded = ShardedCertainDataset(points, shards=4)
        assert isinstance(sharded, CertainDataset)
        np.testing.assert_array_equal(
            np.sort(sharded.points, axis=0), np.sort(points, axis=0)
        )
        shard_points = np.concatenate(
            [
                np.concatenate([obj.samples for obj in shard])
                for shard in sharded.shards()
            ]
        )
        np.testing.assert_array_equal(
            np.sort(shard_points, axis=0), np.sort(points, axis=0)
        )
        summary = sharded.shard_summary()
        assert summary["shards"] == 4
        assert sum(summary["sizes"]) == 20


# ----------------------------------------------------------------------
# ShardedIndex hit-set parity
# ----------------------------------------------------------------------
class TestShardedIndexParity:
    @pytest.mark.parametrize("use_numpy", [True, False])
    @pytest.mark.parametrize("k", [2, 3, 8])
    def test_all_four_calls_match_plain_index(self, rng, use_numpy, k):
        dataset = make_uncertain_dataset(rng, 60)
        sharded = shard_dataset(UncertainDataset(dataset.objects()), k)
        plain = dataset.spatial_index(use_numpy)
        index = sharded.spatial_index(use_numpy)
        assert isinstance(index, ShardedIndex)
        assert index.shard_count == sharded.shard_count

        windows = _windows(rng, 12)
        one = windows[0]
        assert sorted(index.range_search(one), key=repr) == sorted(
            plain.range_search(one), key=repr
        )
        assert index.range_search_any(windows) == sorted(
            plain.range_search_any(windows), key=repr
        )
        sharded_many = index.range_search_many(windows)
        plain_many = plain.range_search_many(windows)
        for got, want in zip(sharded_many, plain_many):
            assert sorted(got, key=repr) == sorted(want, key=repr)
        groups = [windows[:5], [], windows[5:9], windows[9:]]
        sharded_grouped = index.range_search_any_grouped(groups)
        plain_grouped = plain.range_search_any_grouped(groups)
        for got, want in zip(sharded_grouped, plain_grouped):
            assert got == sorted(want, key=repr)

    def test_empty_window_list(self, rng):
        sharded = shard_dataset(make_uncertain_dataset(rng, 12), 3)
        index = sharded.spatial_index(True)
        assert index.range_search_many([]) == []
        assert index.range_search_any_grouped([]) == []

    def test_window_pruning_counts(self, rng):
        from repro import obs

        sharded = shard_dataset(make_uncertain_dataset(rng, 60), 6)
        index = sharded.spatial_index(True)
        registry = obs.registry()
        before_pairs = registry.counter("shard.filter.window_pairs").value
        before_pruned = registry.counter(
            "shard.filter.window_pairs_pruned"
        ).value
        # a tiny corner window cannot intersect every shard root
        index.range_search_many([Rect((0.0, 0.0), (0.2, 0.2))])
        pairs = registry.counter("shard.filter.window_pairs").value
        pruned = registry.counter("shard.filter.window_pairs_pruned").value
        assert pairs - before_pairs == 6
        assert pruned - before_pruned >= 1


# ----------------------------------------------------------------------
# Delta routing and rebalancing
# ----------------------------------------------------------------------
class TestDeltaRouting:
    def test_update_routes_to_owner_without_relayout(self, rng):
        session = Session(make_uncertain_dataset(rng, 30), shards=4)
        layout = session.dataset.layout_digest()
        oid = session.dataset.ids()[7]
        session.apply(
            DatasetDelta.replacement(
                UncertainObject(oid, rng.uniform(0.0, 10.0, size=(2, 2)))
            )
        )
        assert session.dataset.layout_digest() == layout
        assert any(oid in shard.ids() for shard in session.dataset.shards())

    def test_insert_routes_to_nearest_shard(self, rng):
        session = Session(make_uncertain_dataset(rng, 30), shards=3)
        layout = session.dataset.layout_digest()
        session.apply(
            DatasetDelta.insertion(UncertainObject("new", [[5.0, 5.0]]))
        )
        sharded = session.dataset
        assert layout != sharded.layout_digest()  # membership changed
        owners = [s for s in sharded.shards() if "new" in s.ids()]
        assert len(owners) == 1

    def test_would_empty_shard_triggers_repartition(self, rng):
        dataset = make_uncertain_dataset(rng, 8)
        sharded = shard_dataset(dataset, 4)
        lone = min(sharded.shards(), key=len)
        victims = list(lone.ids())
        for oid in victims:
            sharded.delete_object(oid)
        assert len(sharded) == 8 - len(victims)
        assert all(len(s) for s in sharded.shards())

    def test_overflow_insert_triggers_repartition(self, rng):
        sharded = shard_dataset(make_uncertain_dataset(rng, 16), 4)
        limit = sharded._shard_limit()
        # pile clustered inserts onto one corner until some shard overflows
        for i in range(3 * limit):
            sharded.insert_object(
                UncertainObject(f"hot{i}", [[0.05 * (i % 7), 0.05 * (i % 5)]])
            )
        sizes = [len(s) for s in sharded.shards()]
        assert sum(sizes) == 16 + 3 * limit
        assert max(sizes) <= sharded._shard_limit()

    def test_query_parity_after_deltas(self, rng):
        spec = PRSQSpec(q=(5.0, 5.0), alpha=0.5, want="probabilities")
        session = Session(make_uncertain_dataset(rng, 20), shards=4)
        session.apply(
            DatasetDelta.insertion(UncertainObject("x", [[4.0, 4.5]]))
        )
        session.apply(DatasetDelta.deletion(session.dataset.ids()[0]))
        fresh = Session(UncertainDataset(session.dataset.objects()))
        live = session.query(spec).value.probabilities
        ref = fresh.query(spec).value.probabilities
        assert {k: v.hex() for k, v in live.items()} == {
            k: v.hex() for k, v in ref.items()
        }


# ----------------------------------------------------------------------
# Engine plumbing: cache keys, plans, executor payloads, scatter pool
# ----------------------------------------------------------------------
class TestEnginePlumbing:
    def test_session_shards_kwarg_wraps_dataset(self, rng):
        session = Session(make_uncertain_dataset(rng, 20), shards=4)
        assert session.shard_count == 4
        plain = Session(make_uncertain_dataset(rng, 20))
        assert plain.shard_count == 1
        # shards=1 and None stay unsharded
        assert Session(make_uncertain_dataset(rng, 20), shards=1).shard_count == 1

    def test_layout_digest_in_cache_key(self, rng):
        dataset = make_uncertain_dataset(rng, 20)
        spec = PRSQSpec(q=(5.0, 5.0), alpha=0.5)
        shared = LRUCache(maxsize=64)
        k2 = Session(
            UncertainDataset(dataset.objects()), cache=shared, shards=2
        )
        k4 = Session(
            UncertainDataset(dataset.objects()), cache=shared, shards=4
        )
        first = k2.query(spec).value
        hits = shared.stats.hits
        second = k4.query(spec).value  # same fingerprint, different layout
        assert shared.stats.hits == hits  # must NOT alias k2's entry
        assert first.ids == second.ids
        assert k4.query(spec).value.ids == second.ids
        assert shared.stats.hits == hits + 1  # repeat within k=4 does hit

    def test_plan_reports_sharded_kernel(self, rng):
        from repro import obs

        session = Session(
            CertainDataset(rng.uniform(0.0, 10.0, size=(30, 2))), shards=4
        )
        tracer = obs.Tracer()
        with tracer.activate():
            session.query(ReverseSkylineSpec(q=(5.0, 5.0)))

        def walk(span):
            yield span
            for child in span.children:
                yield from walk(child)

        spans = [s for root in tracer.drain() for s in walk(root)]
        kernels = [
            s.attributes.get("kernel") for s in spans if s.name == "filter"
        ]
        assert kernels
        assert any("k=4" in str(kernel) for kernel in kernels)

    def test_parallel_executor_roundtrip(self, rng):
        dataset = make_uncertain_dataset(rng, 24)
        specs = [
            PRSQSpec(q=(5.0, 5.0), alpha=0.5, want="probabilities"),
            PRSQSpec(q=(3.0, 7.0), alpha=0.3),
        ]
        serial = Session(UncertainDataset(dataset.objects()), shards=3)
        expected = [serial.query(s).value for s in specs]
        session = Session(UncertainDataset(dataset.objects()), shards=3)
        outcomes = session.execute_batch(specs, ParallelExecutor(workers=2))
        assert [o.error for o in outcomes] == [None, None]
        # worker outcomes come back value-serialized (plain dict / id list)
        probs = outcomes[0].value
        assert {k: v.hex() for k, v in probs.items()} == {
            k: v.hex() for k, v in expected[0].probabilities.items()
        }
        assert list(outcomes[1].value) == list(expected[1].ids)

    def test_scatter_parity_and_staleness(self, rng):
        dataset = shard_dataset(make_uncertain_dataset(rng, 40), 4)
        windows = _windows(rng, 40)
        baseline = dataset.spatial_index(True).range_search_many(windows)
        with ShardScatter(dataset, workers=2, min_windows=1) as scatter:
            assert scatter.fresh_for(dataset)
            scattered = dataset.spatial_index(True).range_search_many(windows)
            for got, want in zip(scattered, baseline):
                assert sorted(got, key=repr) == sorted(want, key=repr)
            # mutation invalidates the shipped packed snapshots
            dataset.insert_object(UncertainObject("fresh", [[5.0, 5.0]]))
            assert not scatter.fresh_for(dataset)
            after = dataset.spatial_index(True).range_search_many(windows[:4])
            plain = UncertainDataset(dataset.objects()).spatial_index(True)
            for got, want in zip(after, plain.range_search_many(windows[:4])):
                assert sorted(got, key=repr) == sorted(want, key=repr)
        # closed pool: silently serial again
        post = dataset.spatial_index(True).range_search_many(windows[:4])
        for got, want in zip(post, plain.range_search_many(windows[:4])):
            assert sorted(got, key=repr) == sorted(want, key=repr)

    def test_scatter_rejects_unsharded(self, rng):
        with pytest.raises(ValueError):
            ShardScatter(make_uncertain_dataset(rng, 10))

    def test_read_snapshot_isolated_from_writer(self, rng):
        session = Session(make_uncertain_dataset(rng, 20), shards=4)
        spec = PRSQSpec(q=(5.0, 5.0), alpha=0.5, want="probabilities")
        snapshot = session.read_snapshot()
        before = snapshot.reader().query(spec).value.probabilities
        session.apply(
            DatasetDelta.insertion(UncertainObject("z", [[5.0, 5.1]]))
        )
        after = snapshot.reader().query(spec).value.probabilities
        assert {k: v.hex() for k, v in before.items()} == {
            k: v.hex() for k, v in after.items()
        }
        assert "z" in session.query(spec).value.probabilities


# ----------------------------------------------------------------------
# Serve + CLI surfaces
# ----------------------------------------------------------------------
class TestServeSharded:
    def test_info_and_query_parity(self, rng):
        from repro.serve.protocol import ServeConfig
        from repro.serve.service import DatasetService

        dataset = make_uncertain_dataset(rng, 24)
        spec = PRSQSpec(q=(5.0, 5.0), alpha=0.5)

        async def run(config):
            ds = UncertainDataset(dataset.objects())
            async with DatasetService({"default": ds}, config) as svc:
                envelope, _ = await svc.execute(spec)
                return envelope.to_dict()["value"], svc.state("default").info()

        sharded_value, info = asyncio.run(run(ServeConfig(shards=3)))
        plain_value, plain_info = asyncio.run(run(ServeConfig()))
        assert sharded_value == plain_value
        assert info["shards"] == 3
        assert "layout_digest" in info
        assert sum(info["shard_sizes"]) == 24
        assert plain_info["shards"] == 1
        assert "layout_digest" not in plain_info


class TestCliSharded:
    @pytest.fixture
    def queries(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    {"kind": "prsq", "q": [5.0, 5.0], "alpha": 0.5},
                    {
                        "kind": "prsq",
                        "q": [3.0, 7.0],
                        "alpha": 0.3,
                        "want": "probabilities",
                    },
                ]
            )
        )
        return path

    @pytest.fixture
    def data_csv(self, tmp_path):
        data = tmp_path / "data.csv"
        rc = main(
            [
                "generate", "--kind", "uncertain", "--n", "40",
                "--dims", "2", "--seed", "3", "--out", str(data),
            ]
        )
        assert rc == 0
        return data

    def test_batch_shards_bit_identical(
        self, data_csv, queries, capsys
    ):
        rc = main(
            ["batch", "--data", str(data_csv), "--queries", str(queries),
             "--json"]
        )
        assert rc == 0
        plain = json.loads(capsys.readouterr().out)
        rc = main(
            ["batch", "--data", str(data_csv), "--queries", str(queries),
             "--json", "--shards", "8"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        sharded = json.loads(captured.out)
        assert [e["value"] for e in sharded] == [e["value"] for e in plain]
        assert "shards=8" in captured.err

    def test_stats_exports_shard_gauge(self, data_csv, queries, capsys):
        rc = main(
            ["stats", "--data", str(data_csv), "--queries", str(queries),
             "--shards", "4"]
        )
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["gauges"].get("shard.count") == 4.0
        assert any(
            key.startswith("shard.filter.") for key in snapshot["counters"]
        )

    def test_reverse_skyline_certain_with_shards(self, tmp_path, capsys):
        data = tmp_path / "certain.csv"
        rc = main(
            ["generate", "--kind", "certain", "--n", "30", "--dims", "2",
             "--seed", "5", "--out", str(data)]
        )
        assert rc == 0
        queries = tmp_path / "rs.json"
        queries.write_text(
            json.dumps([{"kind": "reverse_skyline", "q": [5.0, 5.0]}])
        )
        capsys.readouterr()  # drain the generate banner
        rc = main(
            ["batch", "--data", str(data), "--queries", str(queries),
             "--dataset-kind", "certain", "--json"]
        )
        assert rc == 0
        plain = json.loads(capsys.readouterr().out)
        rc = main(
            ["batch", "--data", str(data), "--queries", str(queries),
             "--dataset-kind", "certain", "--json", "--shards", "4"]
        )
        assert rc == 0
        sharded = json.loads(capsys.readouterr().out)
        assert [e["value"] for e in sharded] == [e["value"] for e in plain]
