"""Unit tests for the benchmark harness package."""

import numpy as np
import pytest

from repro.bench.harness import run_cp_batch, run_cr_batch, run_naive_i_batch
from repro.bench.metrics import Aggregate
from repro.bench.reporting import (
    format_table,
    is_non_decreasing,
    is_non_increasing,
    series_summary,
)
from repro.bench.workloads import (
    random_query,
    select_prsq_non_answers,
    select_rsq_non_answers,
)
from repro.core.model import RunStats
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.prsq.probability import reverse_skyline_probability


@pytest.fixture(scope="module")
def uncertain_ds():
    return generate_uncertain_dataset(
        300, 2, radius_range=(0, 100), seed=5
    )


@pytest.fixture(scope="module")
def certain_ds():
    return generate_certain_dataset(300, 2, seed=5)


class TestAggregate:
    def test_means(self):
        agg = Aggregate()
        agg.add(RunStats(node_accesses=10, cpu_time_s=0.2, candidates=4))
        agg.add(RunStats(node_accesses=20, cpu_time_s=0.4, candidates=6))
        assert agg.mean_node_accesses == 15.0
        assert agg.mean_cpu_time_s == pytest.approx(0.3)
        assert agg.mean_candidates == 5.0
        assert agg.count == 2

    def test_empty_aggregate_zero(self):
        agg = Aggregate()
        assert agg.mean_node_accesses == 0.0
        assert agg.as_row()["runs"] == 0


class TestWorkloadSelection:
    def test_prsq_selection_yields_non_answers(self, uncertain_ds):
        q = random_query(2, seed=0)
        picks = select_prsq_non_answers(
            uncertain_ds, q, alpha=0.5, count=5, max_candidates=20, seed=0
        )
        assert len(picks) == 5
        for oid in picks:
            assert reverse_skyline_probability(uncertain_ds, oid, q) < 0.5

    def test_prsq_selection_respects_candidate_cap(self, uncertain_ds):
        from repro.core.candidates import find_candidate_causes

        q = random_query(2, seed=0)
        picks = select_prsq_non_answers(
            uncertain_ds, q, alpha=0.5, count=5, max_candidates=10, seed=0
        )
        for oid in picks:
            assert 1 <= len(find_candidate_causes(uncertain_ds, oid, q)) <= 10

    def test_prsq_selection_exhaustion_raises(self, uncertain_ds):
        q = random_query(2, seed=0)
        with pytest.raises(ValueError):
            select_prsq_non_answers(
                uncertain_ds, q, alpha=0.5, count=10_000, seed=0, max_probes=30
            )

    def test_rsq_selection(self, certain_ds):
        q = random_query(2, seed=1)
        picks = select_rsq_non_answers(certain_ds, q, count=5, seed=1)
        assert len(picks) == 5

    def test_random_query_in_domain(self):
        q = random_query(3, seed=2)
        assert q.shape == (3,)
        assert (q >= 0).all() and (q <= 10_000).all()


class TestBatchRunners:
    def test_cp_batch(self, uncertain_ds):
        q = random_query(2, seed=0)
        picks = select_prsq_non_answers(
            uncertain_ds, q, alpha=0.5, count=3, max_candidates=12, seed=0
        )
        batch = run_cp_batch(uncertain_ds, q, 0.5, picks)
        assert batch.aggregate.count == 3
        assert batch.row()["algorithm"] == "CP"
        assert batch.aggregate.mean_node_accesses > 0

    def test_cp_and_naive_agree_in_batch(self, uncertain_ds):
        q = random_query(2, seed=0)
        picks = select_prsq_non_answers(
            uncertain_ds, q, alpha=0.5, count=3, max_candidates=10, seed=0
        )
        cp = run_cp_batch(uncertain_ds, q, 0.5, picks)
        nv = run_naive_i_batch(uncertain_ds, q, 0.5, picks)
        for a, b in zip(cp.results, nv.results):
            assert a.same_causality(b)

    def test_cr_batch(self, certain_ds):
        q = random_query(2, seed=1)
        picks = select_rsq_non_answers(certain_ds, q, count=4, seed=1)
        batch = run_cr_batch(certain_ds, q, picks)
        assert batch.aggregate.count == 4

    def test_batch_skips_accidental_answers(self, certain_ds):
        q = random_query(2, seed=1)
        from repro.skyline.reverse import reverse_skyline

        member = reverse_skyline(certain_ds, q)[0]
        batch = run_cr_batch(certain_ds, q, [member])
        assert batch.aggregate.count == 0


class TestPrsqKernelBench:
    def test_smoke_parity_and_determinism(self):
        """Tiny-scale run of the kernel benchmark's checks.

        The speedup bar is dropped to ~0 here — at this cardinality the
        timing is noise; CI runs the script at a meaningful scale and the
        full bar.
        """
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "bench_prsq_kernels.py"
        )
        spec = importlib.util.spec_from_file_location("bench_prsq_kernels", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        row = module.bench(objects=60, dims=2, batch=6, min_speedup=0.0)
        assert row["speedup"] > 0


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_series_helpers(self):
        rows = [{"x": 1, "y": 5.0}, {"x": 2, "y": 4.0}]
        series = series_summary(rows, "x", "y")
        assert series == [(1, 5.0), (2, 4.0)]
        assert is_non_increasing([5.0, 4.0, 4.0])
        assert not is_non_increasing([1.0, 2.0])
        assert is_non_decreasing([1.0, 1.0, 3.0])
        assert not is_non_decreasing([3.0, 1.0])
