"""Unit tests for the causality result model."""

import pytest

from repro.core.model import Cause, CauseKind, CausalityResult, RunStats


def make_cause(oid="x", gamma=("a", "b")):
    gamma = frozenset(gamma)
    return Cause(
        oid=oid,
        responsibility=1.0 / (1.0 + len(gamma)),
        contingency_set=gamma,
        kind=CauseKind.COUNTERFACTUAL if not gamma else CauseKind.ACTUAL,
    )


class TestCause:
    def test_responsibility_formula_enforced(self):
        with pytest.raises(ValueError):
            Cause("x", 0.5, frozenset({"a", "b"}), CauseKind.ACTUAL)

    def test_counterfactual_requires_empty_gamma(self):
        with pytest.raises(ValueError):
            Cause("x", 1.0 / 3.0, frozenset({"a", "b"}), CauseKind.COUNTERFACTUAL)

    def test_counterfactual_responsibility_one(self):
        c = make_cause(gamma=())
        assert c.kind is CauseKind.COUNTERFACTUAL
        assert c.responsibility == 1.0

    def test_out_of_range_responsibility(self):
        with pytest.raises(ValueError):
            Cause("x", 0.0, frozenset(), CauseKind.COUNTERFACTUAL)

    def test_min_contingency_size(self):
        assert make_cause().min_contingency_size == 2


class TestCausalityResult:
    def test_add_and_lookup(self):
        res = CausalityResult(an_oid="an", alpha=0.5)
        res.add(make_cause("x"))
        assert res.responsibility("x") == pytest.approx(1 / 3)
        assert res.responsibility("not-a-cause") == 0.0
        assert len(res) == 1

    def test_duplicate_rejected(self):
        res = CausalityResult(an_oid="an", alpha=0.5)
        res.add(make_cause("x"))
        with pytest.raises(ValueError):
            res.add(make_cause("x"))

    def test_self_cause_rejected(self):
        res = CausalityResult(an_oid="an", alpha=0.5)
        with pytest.raises(ValueError):
            res.add(make_cause("an"))

    def test_ranked_orders_by_responsibility(self):
        res = CausalityResult(an_oid="an", alpha=0.5)
        res.add(make_cause("weak", gamma=("a", "b", "c")))
        res.add(make_cause("strong", gamma=()))
        assert [oid for oid, _r in res.ranked()] == ["strong", "weak"]

    def test_counterfactual_ids(self):
        res = CausalityResult(an_oid="an", alpha=0.5)
        res.add(make_cause("cf", gamma=()))
        res.add(make_cause("ac"))
        assert res.counterfactual_ids() == ["cf"]

    def test_same_causality_ignores_witnesses(self):
        a = CausalityResult(an_oid="an", alpha=0.5)
        b = CausalityResult(an_oid="an", alpha=0.5)
        a.add(make_cause("x", gamma=("p", "q")))
        b.add(make_cause("x", gamma=("r", "s")))  # different witness, same size
        assert a.same_causality(b)

    def test_same_causality_detects_differences(self):
        a = CausalityResult(an_oid="an", alpha=0.5)
        b = CausalityResult(an_oid="an", alpha=0.5)
        a.add(make_cause("x"))
        b.add(make_cause("y"))
        assert not a.same_causality(b)
        c = CausalityResult(an_oid="an", alpha=0.5)
        c.add(make_cause("x", gamma=("p",)))  # different size
        assert not a.same_causality(c)


class TestRunStats:
    def test_merge_adds_counters(self):
        a = RunStats(node_accesses=3, cpu_time_s=0.5, candidates=2)
        b = RunStats(node_accesses=4, cpu_time_s=0.25, oracle_evaluations=7)
        merged = a.merge(b)
        assert merged.node_accesses == 7
        assert merged.cpu_time_s == 0.75
        assert merged.candidates == 2
        assert merged.oracle_evaluations == 7
