"""Executor parity: the parallel path must be indistinguishable from serial
(same values, same order), across query kinds and chunking choices."""

import pytest

from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine import (
    CausalityCertainSpec,
    CausalitySpec,
    ParallelExecutor,
    PRSQSpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    SerialExecutor,
    Session,
)
from repro.engine.executor import _dataset_payload, _restore_dataset

Q = (5000.0, 5000.0)
ALPHA = 0.5


def assert_same_outcomes(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.spec == b.spec
        if hasattr(a.value, "same_causality"):
            assert b.value.same_causality(a.value)
        else:
            assert a.value == b.value


@pytest.fixture(scope="module")
def uncertain_session():
    return Session(generate_uncertain_dataset(60, 2, seed=9))


@pytest.fixture(scope="module")
def certain_session():
    return Session(generate_certain_dataset(120, 2, seed=9))


class TestParallelParity:
    def test_prsq_batch(self, uncertain_session):
        specs = [
            PRSQSpec(q=(4800.0 + 40.0 * i, 5200.0 - 40.0 * i), alpha=ALPHA)
            for i in range(10)
        ]
        serial = uncertain_session.execute_batch(specs, SerialExecutor())
        parallel = uncertain_session.execute_batch(
            specs, ParallelExecutor(workers=2)
        )
        assert_same_outcomes(serial, parallel)

    def test_mixed_causality_batch(self, uncertain_session):
        non_answers = uncertain_session.execute(
            PRSQSpec(q=Q, alpha=ALPHA, want="non_answers")
        ).value
        specs = [
            CausalitySpec(an=an, q=Q, alpha=ALPHA) for an in non_answers[:6]
        ] + [PRSQSpec(q=Q, alpha=ALPHA)]
        serial = uncertain_session.execute_batch(specs, SerialExecutor())
        parallel = uncertain_session.execute_batch(
            specs, ParallelExecutor(workers=3)
        )
        assert_same_outcomes(serial, parallel)

    def test_certain_batch(self, certain_session):
        skyline = certain_session.execute(ReverseSkylineSpec(q=Q)).value
        an = next(
            oid
            for oid in certain_session.dataset.ids()
            if oid not in set(skyline)
        )
        specs = [
            ReverseSkylineSpec(q=Q),
            ReverseKSkybandSpec(q=Q, k=2),
            CausalityCertainSpec(an=an, q=Q),
        ]
        serial = certain_session.execute_batch(specs, SerialExecutor())
        parallel = certain_session.execute_batch(
            specs, ParallelExecutor(workers=2, chunk_size=1)
        )
        assert_same_outcomes(serial, parallel)

    def test_chunk_size_one_preserves_order(self, uncertain_session):
        specs = [
            PRSQSpec(q=(4700.0 + 60.0 * i, 5000.0), alpha=ALPHA)
            for i in range(7)
        ]
        parallel = uncertain_session.execute_batch(
            specs, ParallelExecutor(workers=2, chunk_size=1)
        )
        assert [outcome.spec for outcome in parallel] == specs

    def test_no_worker_cache(self, uncertain_session):
        specs = [PRSQSpec(q=Q, alpha=ALPHA)] * 4
        parallel = uncertain_session.execute_batch(
            specs, ParallelExecutor(workers=2, cache_size=0)
        )
        serial = uncertain_session.execute_batch(specs, SerialExecutor())
        assert_same_outcomes(serial, parallel)


class TestExecutorEdgeCases:
    def test_empty_batch(self, uncertain_session):
        assert uncertain_session.execute_batch([], ParallelExecutor(2)) == []

    def test_single_spec_runs_inline(self, uncertain_session):
        outcomes = uncertain_session.execute_batch(
            [PRSQSpec(q=Q, alpha=ALPHA)], ParallelExecutor(workers=4)
        )
        assert len(outcomes) == 1

    def test_workers_one_is_serial(self, uncertain_session):
        specs = [PRSQSpec(q=Q, alpha=a) for a in (0.3, 0.6)]
        outcomes = uncertain_session.execute_batch(
            specs, ParallelExecutor(workers=1)
        )
        assert_same_outcomes(
            uncertain_session.execute_batch(specs, SerialExecutor()), outcomes
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunk_size=0)

    def test_bad_spec_fails_fast_in_parent(self, uncertain_session):
        with pytest.raises(TypeError):
            uncertain_session.execute_batch(
                [ReverseSkylineSpec(q=Q)], ParallelExecutor(workers=2)
            )
        with pytest.raises(TypeError):
            uncertain_session.execute_batch(
                [ReverseSkylineSpec(q=Q)], SerialExecutor()
            )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_data_error_captured_not_fatal(self, uncertain_session, workers):
        specs = [
            PRSQSpec(q=Q, alpha=ALPHA),
            CausalitySpec(an="no-such-object", q=Q, alpha=ALPHA),
            PRSQSpec(q=Q, alpha=0.25),
        ]
        executor = (
            ParallelExecutor(workers=workers) if workers > 1 else SerialExecutor()
        )
        outcomes = uncertain_session.execute_batch(specs, executor)
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        assert outcomes[1].value is None
        assert "no-such-object" in outcomes[1].error
        # The good queries still produced their answers.
        assert outcomes[0].value and outcomes[2].value


class TestDatasetHydration:
    def test_uncertain_roundtrip(self, uncertain_session):
        restored = _restore_dataset(
            _dataset_payload(uncertain_session.dataset)
        )
        assert restored.ids() == uncertain_session.dataset.ids()
        from repro.engine import dataset_fingerprint

        assert dataset_fingerprint(restored) == uncertain_session.fingerprint

    def test_certain_roundtrip(self, certain_session):
        restored = _restore_dataset(_dataset_payload(certain_session.dataset))
        from repro.engine import dataset_fingerprint

        assert dataset_fingerprint(restored) == certain_session.fingerprint
        assert type(restored).__name__ == "CertainDataset"
