"""Unit tests for reverse k-skyband queries and their causality."""

import numpy as np
import pytest

from repro.core.naive import brute_force_causality
from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dynamically_dominates
from repro.skyline.reverse import reverse_skyline
from repro.skyline.skyband import (
    compute_causality_k_skyband,
    dominators_of_query,
    is_reverse_k_skyband,
    reverse_k_skyband,
)
from repro.uncertain.dataset import CertainDataset


@pytest.fixture
def band_dataset():
    """an has exactly three dominators toward q = (5, 5)."""
    return CertainDataset(
        [
            [4.0, 4.0],   # an
            [4.3, 4.3],
            [4.5, 4.2],
            [4.2, 4.6],
            [9.0, 0.5],   # unrelated
        ],
        ids=["an", "d1", "d2", "d3", "far"],
    )


class TestQueries:
    def test_k1_equals_reverse_skyline(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(25, 2)))
        q = rng.uniform(0, 10, size=2)
        assert reverse_k_skyband(ds, q, k=1) == reverse_skyline(ds, q)

    def test_membership_counts_dominators(self, band_dataset):
        q = [5.0, 5.0]
        assert dominators_of_query(band_dataset, "an", q) == ["d1", "d2", "d3"]
        assert not is_reverse_k_skyband(band_dataset, "an", q, k=3)
        assert is_reverse_k_skyband(band_dataset, "an", q, k=4)

    def test_band_grows_with_k(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(30, 2)))
        q = rng.uniform(0, 10, size=2)
        previous = set()
        for k in (1, 2, 3, 5):
            band = set(reverse_k_skyband(ds, q, k))
            assert previous <= band
            previous = band

    def test_indexed_dominators_match_scan(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(40, 2)))
        q = rng.uniform(0, 10, size=2)
        for oid in ds.ids()[:6]:
            assert dominators_of_query(ds, oid, q, use_index=True) == (
                dominators_of_query(ds, oid, q, use_index=False)
            )

    def test_invalid_k(self, band_dataset):
        with pytest.raises(ValueError):
            reverse_k_skyband(band_dataset, [5.0, 5.0], k=0)
        with pytest.raises(ValueError):
            is_reverse_k_skyband(band_dataset, "an", [5.0, 5.0], k=0)


class TestCausality:
    def test_closed_form(self, band_dataset):
        q = [5.0, 5.0]
        res = compute_causality_k_skyband(band_dataset, "an", q, k=2)
        # m = 3 dominators, k = 2 -> responsibility 1/(3-2+1) = 1/2.
        assert res.cause_ids() == ["d1", "d2", "d3"]
        for oid in res.cause_ids():
            assert res.responsibility(oid) == pytest.approx(0.5)
            assert len(res.causes[oid].contingency_set) == 1

    def test_k1_matches_cr(self, band_dataset):
        from repro.core.cr import compute_causality_certain

        q = [5.0, 5.0]
        a = compute_causality_k_skyband(band_dataset, "an", q, k=1)
        b = compute_causality_certain(band_dataset, "an", q)
        assert a.same_causality(b)

    def test_counterfactual_when_m_equals_k(self, band_dataset):
        q = [5.0, 5.0]
        res = compute_causality_k_skyband(band_dataset, "an", q, k=3)
        for cause in res.causes.values():
            assert cause.responsibility == 1.0
            assert not cause.contingency_set

    def test_member_rejected(self, band_dataset):
        with pytest.raises(NotANonAnswerError):
            compute_causality_k_skyband(band_dataset, "an", [5.0, 5.0], k=4)

    def test_witnesses_are_valid_contingency_sets(self, rng):
        """Direct Definition-1 check of the closed-form witnesses."""
        ds = CertainDataset(rng.uniform(0, 10, size=(14, 2)))
        q = rng.uniform(0, 10, size=2)
        for oid in ds.ids():
            dominators = dominators_of_query(ds, oid, q)
            for k in (1, 2):
                if len(dominators) < k:
                    continue
                res = compute_causality_k_skyband(ds, oid, q, k=k)
                for cause_id, cause in res.causes.items():
                    remaining = [
                        d
                        for d in dominators
                        if d not in cause.contingency_set and d != cause_id
                    ]
                    # (P - Γ) non-answer: still >= k dominators (incl. cause).
                    assert len(remaining) + 1 >= k
                    # (P - Γ - {cause}) answer: < k dominators left.
                    assert len(remaining) < k

    def test_k1_matches_brute_force(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(8, 2)))
        q = rng.uniform(0, 10, size=2)
        for oid in ds.ids():
            if dominators_of_query(ds, oid, q):
                res = compute_causality_k_skyband(ds, oid, q, k=1)
                bf = brute_force_causality(ds, oid, q, alpha=0.5)
                assert res.same_causality(bf)
                break
