"""Direct tests of the paper's lemmas (1, 3, 4, 5, 6) against semantics."""

import itertools

import numpy as np
import pytest

from repro.core.lemmas import (
    lemma1_is_candidate,
    lemma3_search_space,
    lemma4_must_include,
    lemma5_is_counterfactual,
    lemma6_propagate,
)
from repro.prsq.oracle import MembershipOracle
from repro.prsq.query import prsq_non_answers
from tests.conftest import make_uncertain_dataset


def instances(seed, n=7, alpha=0.5, count=3):
    """Yield (oracle, dataset, q) for up to *count* random non-answers."""
    rng = np.random.default_rng(seed)
    ds = make_uncertain_dataset(rng, n=n, dims=2)
    q = rng.uniform(0, 10, size=2)
    produced = 0
    for an in prsq_non_answers(ds, q, alpha, use_index=False):
        yield MembershipOracle(ds, an, q, alpha), ds, q
        produced += 1
        if produced == count:
            return


def all_contingency_sets(oracle, cc, universe):
    """All qualifying contingency sets for cc drawn from *universe*."""
    pool = [oid for oid in universe if oid != cc]
    found = []
    for size in range(len(pool) + 1):
        for combo in itertools.combinations(pool, size):
            if oracle.is_contingency_set(frozenset(combo), cc):
                found.append(frozenset(combo))
    return found


class TestLemma1:
    @pytest.mark.parametrize("seed", range(5))
    def test_non_candidates_are_never_causes(self, seed):
        """Removing a zero-vector object (alone or inside any Γ) never flips
        membership, so it cannot be a cause."""
        for oracle, ds, _q in instances(seed):
            non_candidates = [
                oid
                for oid in ds.ids()
                if oid != oracle.an_oid and not lemma1_is_candidate(oracle, oid)
            ]
            for oid in non_candidates[:2]:
                # probability is unchanged by its removal under any context
                for removed in (frozenset(), frozenset(oracle.influencer_ids[:1])):
                    assert oracle.probability(removed) == pytest.approx(
                        oracle.probability(removed | {oid})
                    )


class TestLemma3:
    @pytest.mark.parametrize("seed", range(5))
    def test_minimal_sets_only_contain_candidates(self, seed):
        for oracle, ds, _q in instances(seed, n=6):
            candidates = set(lemma3_search_space(oracle))
            for cc in oracle.influencer_ids:
                sets = all_contingency_sets(oracle, cc, ds.ids())
                if not sets:
                    continue
                min_size = min(len(s) for s in sets)
                for gamma in sets:
                    if len(gamma) == min_size:
                        assert gamma <= candidates


class TestLemma4:
    @pytest.mark.parametrize("seed", range(5))
    def test_blockers_in_every_qualifying_set(self, seed):
        for oracle, ds, _q in instances(seed, n=6):
            blockers = set(lemma4_must_include(oracle))
            for cc in oracle.influencer_ids:
                for gamma in all_contingency_sets(
                    oracle, cc, oracle.influencer_ids
                ):
                    assert blockers - {cc} <= gamma


class TestLemma5:
    @pytest.mark.parametrize("seed", range(5))
    def test_counterfactuals_absent_from_minimal_sets(self, seed):
        for oracle, _ds, _q in instances(seed, n=6):
            counterfactuals = {
                oid
                for oid in oracle.influencer_ids
                if lemma5_is_counterfactual(oracle, oid)
            }
            if not counterfactuals:
                continue
            for cc in oracle.influencer_ids:
                if cc in counterfactuals:
                    continue
                sets = all_contingency_sets(oracle, cc, oracle.influencer_ids)
                if not sets:
                    continue
                min_size = min(len(s) for s in sets)
                minimal = [s for s in sets if len(s) == min_size]
                assert any(not (s & counterfactuals) for s in minimal)


class TestLemma6:
    @pytest.mark.parametrize("seed", range(5))
    def test_propagated_witnesses_are_contingency_sets(self, seed):
        for oracle, _ds, _q in instances(seed, n=6):
            for cc in oracle.influencer_ids:
                sets = all_contingency_sets(oracle, cc, oracle.influencer_ids)
                if not sets:
                    continue
                gamma = min(sets, key=len)
                witnesses = lemma6_propagate(
                    oracle, cc, gamma, oracle.influencer_ids
                )
                for member, witness in witnesses.items():
                    assert oracle.is_contingency_set(witness, member)
                    assert len(witness) == len(gamma)
