"""Determinism tests: identical inputs must produce identical outputs.

A reproduction package lives or dies by replayability — every generator,
workload selector, and algorithm here must be a pure function of its seed
and inputs.
"""

import numpy as np
import pytest

from repro.bench.workloads import random_query, select_prsq_non_answers
from repro.core.cp import CPConfig, compute_causality
from repro.core.cr import compute_causality_certain
from repro.datasets.cardb import generate_cardb
from repro.datasets.nba import generate_nba
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.prsq.probability import reverse_skyline_probability
from repro.prsq.query import prsq_non_answers
from tests.conftest import make_uncertain_dataset


class TestGeneratorDeterminism:
    def test_uncertain_generator(self):
        a = generate_uncertain_dataset(60, 3, seed=21)
        b = generate_uncertain_dataset(60, 3, seed=21)
        for oa, ob in zip(a, b):
            assert oa == ob

    def test_certain_generator(self):
        a = generate_certain_dataset(100, 2, distribution="clustered", seed=22)
        b = generate_certain_dataset(100, 2, distribution="clustered", seed=22)
        assert np.array_equal(a.points, b.points)

    def test_nba_generator(self):
        a = generate_nba(n_players=80, seed=23)
        b = generate_nba(n_players=80, seed=23)
        for oa, ob in zip(a, b):
            assert oa == ob

    def test_cardb_generator(self):
        a = generate_cardb(n=200, seed=24)
        b = generate_cardb(n=200, seed=24)
        assert np.array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = generate_uncertain_dataset(30, 2, seed=1)
        b = generate_uncertain_dataset(30, 2, seed=2)
        assert any(oa != ob for oa, ob in zip(a, b))


class TestWorkloadDeterminism:
    def test_query_and_selection(self):
        ds = generate_uncertain_dataset(300, 2, radius_range=(0, 120), seed=25)
        q = random_query(2, seed=25)
        assert np.array_equal(q, random_query(2, seed=25))
        picks_a = select_prsq_non_answers(ds, q, 0.5, count=3, seed=25)
        picks_b = select_prsq_non_answers(ds, q, 0.5, count=3, seed=25)
        assert picks_a == picks_b


class TestProbabilityDeterminism:
    """Eq. (2) must return the same *bits* run after run.

    The pruned path once iterated an unordered ``set`` of R-tree hits, so
    the floating-point product order — and the returned bits — could vary
    between runs; hits are now sorted into dataset order, the same order
    the unpruned scan uses.
    """

    def _dataset(self):
        return generate_uncertain_dataset(120, 2, radius_range=(0, 150), seed=31)

    def test_bits_stable_across_runs_and_fresh_indexes(self):
        q = random_query(2, seed=31)
        reference = None
        for _ in range(3):
            ds = self._dataset()  # fresh dataset => fresh R-tree
            bits = [
                reverse_skyline_probability(ds, oid, q).hex()
                for oid in ds.ids()[:30]
            ]
            if reference is None:
                reference = bits
            assert bits == reference

    def test_bits_identical_across_use_index(self):
        ds = self._dataset()
        q = random_query(2, seed=31)
        for oid in ds.ids()[:30]:
            pruned = reverse_skyline_probability(ds, oid, q, use_index=True)
            scanned = reverse_skyline_probability(ds, oid, q, use_index=False)
            assert pruned.hex() == scanned.hex()

    def test_bits_identical_across_kernel_paths(self):
        ds = self._dataset()
        q = random_query(2, seed=31)
        for oid in ds.ids()[:15]:
            fast = reverse_skyline_probability(ds, oid, q, use_numpy=True)
            slow = reverse_skyline_probability(ds, oid, q, use_numpy=False)
            assert fast.hex() == slow.hex()


class TestAlgorithmDeterminism:
    def _instance(self):
        rng = np.random.default_rng(26)
        ds = make_uncertain_dataset(rng, n=10, dims=2)
        q = rng.uniform(0, 10, size=2)
        nas = prsq_non_answers(ds, q, 0.5, use_index=False)
        if not nas:
            pytest.skip("no non-answers in draw")
        return ds, q, nas[0]

    def test_cp_identical_across_runs(self):
        ds, q, an = self._instance()
        first = compute_causality(ds, an, q, 0.5)
        second = compute_causality(ds, an, q, 0.5)
        assert first.same_causality(second)
        # Witness sets are deterministic too, not just responsibilities.
        for oid in first.cause_ids():
            assert (
                first.causes[oid].contingency_set
                == second.causes[oid].contingency_set
            )

    def test_cp_identical_across_fresh_datasets(self):
        """Recreating the dataset object (fresh R-tree) changes nothing."""
        rng_a = np.random.default_rng(27)
        rng_b = np.random.default_rng(27)
        ds_a = make_uncertain_dataset(rng_a, n=12, dims=2)
        ds_b = make_uncertain_dataset(rng_b, n=12, dims=2)
        q = np.array([5.0, 5.0])
        nas = prsq_non_answers(ds_a, q, 0.5, use_index=False)
        if not nas:
            pytest.skip("no non-answers in draw")
        a = compute_causality(ds_a, nas[0], q, 0.5)
        b = compute_causality(ds_b, nas[0], q, 0.5)
        assert a.same_causality(b)
        assert a.stats.node_accesses == b.stats.node_accesses

    def test_cr_identical_across_runs(self, rng):
        ds = generate_certain_dataset(200, 2, seed=28)
        q = random_query(2, seed=28)
        from repro.skyline.reverse import reverse_skyline

        members = set(reverse_skyline(ds, q))
        non_answers = [oid for oid in ds.ids() if oid not in members]
        if not non_answers:
            pytest.skip("no non-answers")
        an = non_answers[0]
        a = compute_causality_certain(ds, an, q)
        b = compute_causality_certain(ds, an, q)
        assert a.same_causality(b)

    def test_config_ablation_does_not_change_witness_sizes(self):
        ds, q, an = self._instance()
        full = compute_causality(ds, an, q, 0.5)
        for config in (
            CPConfig(use_lemma6=False),
            CPConfig(use_bound_prune=False),
        ):
            alt = compute_causality(ds, an, q, 0.5, config=config)
            for oid in full.cause_ids():
                assert len(full.causes[oid].contingency_set) == len(
                    alt.causes[oid].contingency_set
                )
