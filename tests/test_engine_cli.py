"""End-to-end smoke tests for the ``batch`` CLI subcommand."""

import json

import pytest

from repro.io.cli import build_parser, main


@pytest.fixture
def uncertain_csv(tmp_path):
    data = tmp_path / "data.csv"
    rc = main(
        [
            "generate",
            "--kind",
            "uncertain",
            "--n",
            "40",
            "--dims",
            "2",
            "--seed",
            "3",
            "--out",
            str(data),
        ]
    )
    assert rc == 0
    return data


def write_queries(tmp_path, specs):
    path = tmp_path / "queries.json"
    path.write_text(json.dumps(specs))
    return path


class TestBatchRegistration:
    def test_batch_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "batch" in capsys.readouterr().out

    def test_batch_help_flags(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--help"])
        out = capsys.readouterr().out
        for flag in ("--workers", "--no-cache", "--queries", "--cache-size"):
            assert flag in out


class TestBatchEndToEnd:
    def test_text_output(self, tmp_path, uncertain_csv, capsys):
        queries = write_queries(
            tmp_path,
            [
                {"kind": "prsq", "q": [5000, 5000], "alpha": 0.5,
                 "want": "non_answers"},
                {"kind": "prsq", "q": [5000, 5000], "alpha": 0.8,
                 "want": "answers"},
                {"kind": "prsq", "q": [5000, 5000], "alpha": 0.5,
                 "want": "non_answers"},
            ],
        )
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries)]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "[computed] prsq" in captured.out
        assert "[cached] prsq" in captured.out
        assert "3 queries" in captured.err
        assert "cache hits=" in captured.err

    def test_json_output_with_causality(self, tmp_path, uncertain_csv, capsys):
        # Discover a real non-answer first, then explain it in the batch.
        rc = main(
            [
                "batch",
                "--data",
                str(uncertain_csv),
                "--queries",
                str(
                    write_queries(
                        tmp_path,
                        [{"kind": "prsq", "q": [5000, 5000], "alpha": 0.5,
                          "want": "non_answers"}],
                    )
                ),
                "--json",
            ]
        )
        assert rc == 0
        envelope = json.loads(capsys.readouterr().out)[0]
        assert envelope["schema_version"] == 2
        assert envelope["ok"] is True
        non_answers = envelope["value"]["ids"]
        assert non_answers

        queries = write_queries(
            tmp_path,
            [
                {"kind": "prsq", "q": [5000, 5000], "alpha": 0.5},
                {"kind": "causality", "an": non_answers[0],
                 "q": [5000, 5000], "alpha": 0.5},
            ],
        )
        rc = main(
            [
                "batch",
                "--data",
                str(uncertain_csv),
                "--queries",
                str(queries),
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out)
        assert len(payload) == 2
        assert payload[0]["spec"]["kind"] == "prsq"
        assert payload[1]["spec"]["kind"] == "causality"
        assert payload[1]["value"]["an"] == non_answers[0]
        assert isinstance(payload[1]["value"]["causes"], list)

    def test_parallel_workers_match_serial(self, tmp_path, uncertain_csv, capsys):
        queries = write_queries(
            tmp_path,
            [
                {"kind": "prsq", "q": [4800 + 50 * i, 5100], "alpha": 0.5}
                for i in range(4)
            ],
        )
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries),
             "--json"]
        )
        assert rc == 0
        serial = json.loads(capsys.readouterr().out)
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries),
             "--json", "--workers", "2"]
        )
        assert rc == 0
        parallel = json.loads(capsys.readouterr().out)
        assert [o["value"] for o in serial] == [o["value"] for o in parallel]

    def test_no_cache_flag(self, tmp_path, uncertain_csv, capsys):
        queries = write_queries(
            tmp_path,
            [{"kind": "prsq", "q": [5000, 5000], "alpha": 0.5}] * 2,
        )
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries),
             "--no-cache"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "[cached]" not in captured.out
        assert "cache hits=0" in captured.err

    def test_bad_queries_file(self, tmp_path, uncertain_csv, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "prsq"}))  # not an array
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(bad)]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_per_spec_error_captured(self, tmp_path, uncertain_csv, capsys):
        queries = write_queries(
            tmp_path,
            [
                {"kind": "prsq", "q": [5000, 5000], "alpha": 0.5},
                {"kind": "causality", "an": "no-such-id",
                 "q": [5000, 5000], "alpha": 0.5},
            ],
        )
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries)]
        )
        captured = capsys.readouterr()
        assert rc == 1  # at least one spec failed
        assert "[computed] prsq" in captured.out  # the good one still ran
        assert "[error] causality" in captured.out
        assert "no-such-id" in captured.out
        assert "1 failed" in captured.err

    def test_unhashable_spec_field_clean_error(
        self, tmp_path, uncertain_csv, capsys
    ):
        queries = write_queries(
            tmp_path,
            [{"kind": "causality", "an": [1, 2], "q": [5000, 5000],
              "alpha": 0.5}],
        )
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries)]
        )
        assert rc == 1
        assert "hashable" in capsys.readouterr().err

    def test_cache_size_zero_disables_cache(
        self, tmp_path, uncertain_csv, capsys
    ):
        queries = write_queries(
            tmp_path,
            [{"kind": "prsq", "q": [5000, 5000], "alpha": 0.5}] * 2,
        )
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries),
             "--cache-size", "0"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "[cached]" not in captured.out

    def test_unknown_kind_reports_error(self, tmp_path, uncertain_csv, capsys):
        queries = write_queries(tmp_path, [{"kind": "teleport", "q": [1, 2]}])
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries)]
        )
        assert rc == 1
        assert "unknown query kind" in capsys.readouterr().err


class TestBatchStreaming:
    def _stream(self, uncertain_csv, tmp_path, capsys, specs, extra=()):
        queries = write_queries(tmp_path, specs)
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries),
             "--stream", *extra]
        )
        captured = capsys.readouterr()
        lines = [line for line in captured.out.splitlines() if line.strip()]
        return rc, lines, captured.err

    def test_ndjson_one_envelope_per_spec(self, tmp_path, uncertain_csv, capsys):
        from repro.api import QueryResult

        specs = [
            {"kind": "prsq", "q": [5000, 5000], "alpha": 0.5,
             "want": "non_answers"},
            {"kind": "prsq", "q": [5000, 5000], "alpha": 0.8},
            {"kind": "causality", "an": "no-such-id",
             "q": [5000, 5000], "alpha": 0.5},
        ]
        rc, lines, err = self._stream(uncertain_csv, tmp_path, capsys, specs)
        assert rc == 1  # the bad causality spec failed
        assert len(lines) == len(specs)
        envelopes = [QueryResult.from_dict(json.loads(line)) for line in lines]
        assert [e.kind for e in envelopes] == ["prsq", "prsq", "causality"]
        assert envelopes[0].ok and envelopes[1].ok and not envelopes[2].ok
        assert envelopes[2].error.code == "unknown_object"
        # every line re-serializes byte-identically (valid NDJSON envelope)
        for line, env in zip(lines, envelopes):
            assert json.dumps(env.to_dict()) == line
        assert "1 failed" in err

    def test_stream_matches_json_values(self, tmp_path, uncertain_csv, capsys):
        specs = [
            {"kind": "prsq", "q": [4800 + 50 * i, 5100], "alpha": 0.5}
            for i in range(3)
        ]
        queries = write_queries(tmp_path, specs)
        rc = main(
            ["batch", "--data", str(uncertain_csv), "--queries", str(queries),
             "--json"]
        )
        assert rc == 0
        as_array = json.loads(capsys.readouterr().out)
        rc, lines, _err = self._stream(uncertain_csv, tmp_path, capsys, specs)
        assert rc == 0
        assert [json.loads(line)["value"] for line in lines] == [
            e["value"] for e in as_array
        ]

    def test_stream_with_workers(self, tmp_path, uncertain_csv, capsys):
        specs = [
            {"kind": "prsq", "q": [4800 + 50 * i, 5100], "alpha": 0.5}
            for i in range(4)
        ]
        rc, lines, _err = self._stream(
            uncertain_csv, tmp_path, capsys, specs, extra=("--workers", "2")
        )
        assert rc == 0
        assert len(lines) == len(specs)
        alphas = [json.loads(line)["spec"]["q"][0] for line in lines]
        assert alphas == [4800.0, 4850.0, 4900.0, 4950.0]  # input order kept

    def test_stream_and_json_mutually_exclusive(self, tmp_path, uncertain_csv):
        queries = write_queries(
            tmp_path, [{"kind": "prsq", "q": [5000, 5000], "alpha": 0.5}]
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["batch", "--data", str(uncertain_csv), "--queries",
                 str(queries), "--json", "--stream"]
            )
