"""Unit tests for repro.geometry.dominance."""

import numpy as np
import pytest

from repro.geometry.dominance import (
    dominance_rectangle,
    dominance_vector,
    dominated_by_any,
    dominates,
    dynamically_dominates,
    strictly_dominates,
)


class TestClassicDominance:
    def test_dominates_strict_everywhere(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])

    def test_dominates_with_tie(self):
        assert dominates([1.0, 2.0], [1.0, 3.0])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1.0, 2.0], [1.0, 2.0])

    def test_incomparable(self):
        assert not dominates([1.0, 3.0], [2.0, 2.0])
        assert not dominates([2.0, 2.0], [1.0, 3.0])

    def test_strictly_dominates(self):
        assert strictly_dominates([0.0, 0.0], [1.0, 1.0])
        assert not strictly_dominates([0.0, 1.0], [1.0, 1.0])


class TestDynamicDominance:
    def test_closer_in_all_dims(self):
        # center 0; p1 at ±1 vs p2 at ±2
        assert dynamically_dominates([1.0, -1.0], [2.0, 2.0], [0.0, 0.0])

    def test_requires_strict_in_one(self):
        assert not dynamically_dominates([1.0, 1.0], [-1.0, -1.0], [0.0, 0.0])

    def test_sign_irrelevant_only_distance(self):
        assert dynamically_dominates([-1.0, 1.0], [2.0, -2.0], [0.0, 0.0])

    def test_incomparable_mixed(self):
        assert not dynamically_dominates([1.0, 3.0], [2.0, 2.0], [0.0, 0.0])

    def test_definition_3_example_reflexivity_fails(self):
        p = [2.0, 3.0]
        assert not dynamically_dominates(p, p, [0.0, 0.0])

    def test_asymmetry(self):
        center = [5.0, 5.0]
        a, b = [5.5, 5.5], [7.0, 7.0]
        assert dynamically_dominates(a, b, center)
        assert not dynamically_dominates(b, a, center)


class TestDominanceVector:
    def test_matches_scalar_calls(self, rng):
        points = rng.uniform(0, 10, size=(40, 3))
        target = rng.uniform(0, 10, size=3)
        center = rng.uniform(0, 10, size=3)
        vec = dominance_vector(points, target, center)
        for k in range(40):
            assert vec[k] == dynamically_dominates(points[k], target, center)

    def test_empty_matrix(self):
        vec = dominance_vector(np.empty((0, 2)), [1.0, 1.0], [0.0, 0.0])
        assert vec.shape == (0,)

    def test_dominated_by_any(self):
        pts = np.array([[9.0, 9.0], [0.5, 0.5]])
        assert dominated_by_any(pts, [1.0, 1.0], [0.0, 0.0])
        assert not dominated_by_any(pts[:1], [1.0, 1.0], [0.0, 0.0])

    def test_dominated_by_any_empty(self):
        assert not dominated_by_any(np.empty((0, 2)), [1.0, 1.0], [0.0, 0.0])


class TestDominanceRectangle:
    def test_centered_on_sample(self):
        rect = dominance_rectangle([2.0, 2.0], [3.0, 4.0])
        assert np.allclose(rect.center, [2.0, 2.0], rtol=0, atol=1e-12)

    def test_half_extent_is_distance_to_q(self):
        # Nominal bounds are s -/+ |q - s|; the rectangle may widen by an
        # ulp per side so that points whose rounded distance ties |q - s|
        # (and therefore pass the dominance comparison) stay inside.
        rect = dominance_rectangle([2.0, 2.0], [3.0, 4.0])
        lo_nominal = np.array([1.0, 0.0])
        hi_nominal = np.array([3.0, 4.0])
        h = np.array([1.0, 2.0])
        slack = np.nextafter(h, np.inf) - h  # one h-ulp per side at most
        assert np.all(rect.lo <= lo_nominal)
        assert np.all(rect.hi >= hi_nominal)
        assert np.all(rect.lo >= lo_nominal - slack)
        assert np.all(rect.hi <= hi_nominal + slack)

    def test_infinite_inputs_terminate(self):
        # Overflowing/infinite half-extents keep the naive +/-inf bounds
        # instead of ulp-stepping forever.
        rect = dominance_rectangle([0.0, 0.0], [np.inf, 1.0])
        assert rect.lo[0] == -np.inf and rect.hi[0] == np.inf
        assert rect.contains_point([1e300, 0.5])
        with np.errstate(over="ignore"):
            rect = dominance_rectangle([-1.7e308, 0.0], [1.7e308, 1.0])
        assert rect.lo[0] == -np.inf and rect.hi[0] == np.inf

    def test_contains_q_on_boundary(self):
        q = [3.0, 4.0]
        rect = dominance_rectangle([2.0, 2.0], q)
        assert rect.contains_point(q)

    def test_rectangle_is_complete_filter(self, rng):
        """Every point that dynamically dominates q w.r.t. s lies in the rect."""
        for _ in range(50):
            s = rng.uniform(0, 10, size=2)
            q = rng.uniform(0, 10, size=2)
            p = rng.uniform(0, 10, size=2)
            rect = dominance_rectangle(s, q)
            if dynamically_dominates(p, q, s):
                assert rect.contains_point(p)

    def test_interior_point_dominates(self, rng):
        """A strictly interior point always dominates q w.r.t. s."""
        for _ in range(50):
            s = rng.uniform(0, 10, size=2)
            q = rng.uniform(0, 10, size=2)
            rect = dominance_rectangle(s, q)
            if rect.area() == 0.0:
                continue
            p = rect.center + (rect.extents * 0.2) * rng.uniform(-1, 1, 2)
            assert dynamically_dominates(p, q, s) or np.allclose(
                np.abs(p - s), np.abs(np.asarray(q) - s)
            )
