"""Unit tests for classic, dynamic, and reverse skyline operators."""

import numpy as np
import pytest

from repro.geometry.dominance import dominates, dynamically_dominates
from repro.skyline.classic import is_skyline_point, skyline_indices, skyline_points
from repro.skyline.dynamic import dynamic_skyline_indices, q_in_dynamic_skyline
from repro.skyline.reverse import (
    is_reverse_skyline,
    is_reverse_skyline_bruteforce,
    reverse_skyline,
    reverse_skyline_bruteforce,
)
from repro.uncertain.dataset import CertainDataset


class TestClassicSkyline:
    def test_known_example(self):
        pts = np.array([[1, 4], [2, 2], [4, 1], [3, 3], [5, 5]])
        assert skyline_indices(pts) == [0, 1, 2]

    def test_empty(self):
        assert skyline_indices(np.empty((0, 2))) == []

    def test_single_point(self):
        assert skyline_indices(np.array([[3.0, 3.0]])) == [0]

    def test_duplicates_all_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert skyline_indices(pts) == [0, 1]

    def test_no_skyline_point_dominated(self, rng):
        pts = rng.uniform(0, 10, size=(60, 3))
        sky = set(skyline_indices(pts))
        for i in sky:
            assert not any(
                dominates(pts[j], pts[i]) for j in range(60) if j != i
            )

    def test_every_non_skyline_dominated(self, rng):
        pts = rng.uniform(0, 10, size=(60, 3))
        sky = set(skyline_indices(pts))
        for i in set(range(60)) - sky:
            assert any(dominates(pts[j], pts[i]) for j in range(60))

    def test_float_sum_tie_still_detects_dominance(self):
        """Regression: a dominating point whose coordinate sum rounds to the
        same float as the dominated point's must still evict it.

        With ``(1.9e-165, 1.0)`` and ``(0.0, 1.0)`` both sums round to 1.0,
        so the stable presort visits the dominated point first; the old
        single-pass window kept it forever.
        """
        pts = np.array([[1.9105846684395523e-165, 1.0], [0.0, 1.0]])
        assert skyline_indices(pts) == [1]
        # And symmetric order (dominator first) is unchanged.
        assert skyline_indices(pts[::-1]) == [0]

    def test_skyline_points_rows(self):
        pts = np.array([[1, 4], [2, 2], [4, 1], [3, 3]])
        rows = skyline_points(pts)
        assert rows.shape == (3, 2)

    def test_is_skyline_point(self):
        pts = np.array([[1.0, 4.0], [2.0, 2.0], [3.0, 3.0]])
        assert is_skyline_point(pts, 0)
        assert is_skyline_point(pts, 1)
        assert not is_skyline_point(pts, 2)

    def test_is_skyline_point_singleton(self):
        assert is_skyline_point(np.array([[1.0, 1.0]]), 0)


class TestDynamicSkyline:
    def test_transform_reduction(self, rng):
        pts = rng.uniform(0, 10, size=(40, 2))
        center = rng.uniform(0, 10, size=2)
        indices = set(dynamic_skyline_indices(pts, center))
        # Check definition directly: member iff not dynamically dominated.
        for i in range(40):
            dominated = any(
                dynamically_dominates(pts[j], pts[i], center)
                for j in range(40)
                if j != i
            )
            assert (i in indices) == (not dominated)

    def test_q_in_dynamic_skyline_empty(self):
        assert q_in_dynamic_skyline(np.empty((0, 2)), [0.0, 0.0], [1.0, 1.0])

    def test_q_in_dynamic_skyline_blocked(self):
        pts = np.array([[1.0, 1.0]])
        assert not q_in_dynamic_skyline(pts, [0.0, 0.0], [2.0, 2.0])

    def test_q_in_dynamic_skyline_incomparable(self):
        pts = np.array([[3.0, 0.5]])
        assert q_in_dynamic_skyline(pts, [0.0, 0.0], [2.0, 2.0])


class TestReverseSkyline:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_indexed_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        ds = CertainDataset(rng.uniform(0, 10, size=(40, 2)))
        q = rng.uniform(0, 10, size=2)
        assert reverse_skyline(ds, q) == reverse_skyline_bruteforce(ds, q)

    def test_membership_consistency(self, small_certain, rng):
        q = rng.uniform(0, 10, size=2)
        for oid in small_certain.ids():
            assert is_reverse_skyline(small_certain, oid, q) == (
                is_reverse_skyline_bruteforce(small_certain, oid, q)
            )

    def test_single_object_always_member(self):
        ds = CertainDataset([[1.0, 1.0]])
        assert reverse_skyline(ds, [5.0, 5.0]) == [0]

    def test_definition_by_example(self):
        # b between a and q blocks a; c is off-axis and stays a member.
        ds = CertainDataset(
            [[0.0, 0.0], [1.0, 1.0], [9.0, 0.0]], ids=["a", "b", "c"]
        )
        q = [2.0, 2.0]
        members = reverse_skyline(ds, q)
        assert "a" not in members
        assert "b" in members
        assert "c" in members

    def test_higher_dims(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(30, 4)))
        q = rng.uniform(0, 10, size=4)
        assert reverse_skyline(ds, q) == reverse_skyline_bruteforce(ds, q)
