"""Unit tests for the uncertain object / dataset model."""

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, InvalidProbabilityError
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject


class TestUncertainObject:
    def test_equal_probabilities_default(self):
        obj = UncertainObject("u", [[0, 0], [1, 1], [2, 2]])
        assert obj.probabilities.tolist() == pytest.approx([1 / 3] * 3)

    def test_explicit_probabilities(self):
        obj = UncertainObject("u", [[0, 0], [1, 1]], [0.25, 0.75])
        assert obj.probabilities.tolist() == [0.25, 0.75]

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(InvalidProbabilityError):
            UncertainObject("u", [[0, 0], [1, 1]], [0.5, 0.6])

    def test_zero_probability_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            UncertainObject("u", [[0, 0], [1, 1]], [0.0, 1.0])

    def test_count_mismatch_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            UncertainObject("u", [[0, 0], [1, 1]], [1.0])

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            UncertainObject("u", np.empty((0, 2)))

    def test_certain_constructor(self):
        obj = UncertainObject.certain("c", [3.0, 4.0])
        assert obj.is_certain
        assert obj.num_samples == 1
        assert obj.probabilities.tolist() == [1.0]

    def test_mbr_bounds_samples(self):
        obj = UncertainObject("u", [[0, 5], [2, 1]])
        assert obj.mbr.lo.tolist() == [0.0, 1.0]
        assert obj.mbr.hi.tolist() == [2.0, 5.0]

    def test_expected_position(self):
        obj = UncertainObject("u", [[0.0, 0.0], [4.0, 8.0]], [0.75, 0.25])
        assert obj.expected_position().tolist() == [1.0, 2.0]

    def test_samples_immutable(self):
        obj = UncertainObject("u", [[0, 0], [1, 1]])
        with pytest.raises(ValueError):
            obj.samples[0, 0] = 9.0

    def test_equality_by_content(self):
        a = UncertainObject("u", [[0, 0]])
        b = UncertainObject("u", [[0, 0]])
        c = UncertainObject("u", [[1, 0]])
        assert a == b
        assert a != c

    def test_repr_includes_name(self):
        obj = UncertainObject("u", [[0, 0]], name="Larry Bird")
        assert "Larry Bird" in repr(obj)


class TestUncertainDataset:
    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            UncertainDataset([])

    def test_duplicate_ids_rejected(self):
        objs = [UncertainObject("x", [[0, 0]]), UncertainObject("x", [[1, 1]])]
        with pytest.raises(ValueError):
            UncertainDataset(objs)

    def test_dim_mismatch_rejected(self):
        objs = [UncertainObject("x", [[0, 0]]), UncertainObject("y", [[1, 1, 1]])]
        with pytest.raises(ValueError):
            UncertainDataset(objs)

    def test_lookup_and_contains(self, tiny_uncertain):
        oid = tiny_uncertain.ids()[0]
        assert oid in tiny_uncertain
        assert tiny_uncertain.get(oid).oid == oid
        assert "nope" not in tiny_uncertain

    def test_others_excludes_target(self, tiny_uncertain):
        oid = tiny_uncertain.ids()[2]
        others = tiny_uncertain.others(oid)
        assert len(others) == len(tiny_uncertain) - 1
        assert all(obj.oid != oid for obj in others)

    def test_without(self, tiny_uncertain):
        removed = set(tiny_uncertain.ids()[:2])
        reduced = tiny_uncertain.without(removed)
        assert len(reduced) == len(tiny_uncertain) - 2
        assert not removed & set(reduced.ids())

    def test_rtree_lazily_built_and_complete(self, tiny_uncertain):
        assert tiny_uncertain._rtree is None
        tree = tiny_uncertain.rtree
        assert sorted(map(repr, tree.all_payloads())) == sorted(
            map(repr, tiny_uncertain.ids())
        )
        assert tiny_uncertain.rtree is tree  # cached

    def test_max_samples(self):
        ds = UncertainDataset(
            [
                UncertainObject("a", [[0, 0]]),
                UncertainObject("b", [[0, 0], [1, 1], [2, 2]]),
            ]
        )
        assert ds.max_samples() == 3


class TestCertainDataset:
    def test_points_become_single_sample_objects(self):
        ds = CertainDataset([[1.0, 2.0], [3.0, 4.0]])
        assert all(obj.is_certain for obj in ds)

    def test_default_ids_are_positional(self):
        ds = CertainDataset([[1.0, 2.0], [3.0, 4.0]])
        assert ds.ids() == [0, 1]

    def test_custom_ids(self):
        ds = CertainDataset([[1.0, 2.0]], ids=["car"])
        assert ds.point_of("car").tolist() == [1.0, 2.0]

    def test_id_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CertainDataset([[1.0, 2.0]], ids=["a", "b"])

    def test_names_attached(self):
        ds = CertainDataset([[1.0, 2.0]], ids=["x"], names=["Car X"])
        assert ds.get("x").name == "Car X"
