"""Unit tests for the continuous pdf uncertain model (Sec. 3.2)."""

import numpy as np
import pytest

from repro.geometry.dominance import dominance_rectangle
from repro.geometry.rectangle import Rect
from repro.uncertain.pdf import TruncatedGaussianObject, UniformBoxObject


@pytest.fixture
def box_object():
    return UniformBoxObject("u", Rect([6.0, 6.0], [8.0, 7.0]))


class TestSampling:
    def test_uniform_samples_inside_region(self, box_object, rng):
        pts = box_object.sample(500, rng)
        assert pts.shape == (500, 2)
        assert box_object.region.contains_points(pts).all()

    def test_gaussian_samples_inside_region(self, rng):
        obj = TruncatedGaussianObject("g", Rect([0.0, 0.0], [4.0, 4.0]))
        pts = obj.sample(500, rng)
        assert obj.region.contains_points(pts).all()

    def test_gaussian_concentrates_near_center(self, rng):
        obj = TruncatedGaussianObject("g", Rect([0.0, 0.0], [4.0, 4.0]), sigma=0.5)
        pts = obj.sample(2000, rng)
        assert np.abs(pts.mean(axis=0) - [2.0, 2.0]).max() < 0.15

    def test_uniform_mean_near_center(self, box_object, rng):
        pts = box_object.sample(4000, rng)
        assert np.abs(pts.mean(axis=0) - box_object.region.center).max() < 0.1


class TestPdfValues:
    def test_uniform_density(self, box_object):
        assert box_object.pdf([7.0, 6.5]) == pytest.approx(1.0 / 2.0)
        assert box_object.pdf([0.0, 0.0]) == 0.0

    def test_uniform_degenerate_region_rejected(self):
        obj = UniformBoxObject("u", Rect([1.0, 1.0], [1.0, 2.0]))
        with pytest.raises(ValueError):
            obj.pdf([1.0, 1.5])

    def test_gaussian_peaks_at_center(self):
        obj = TruncatedGaussianObject("g", Rect([0.0, 0.0], [4.0, 4.0]), sigma=1.0)
        assert obj.pdf([2.0, 2.0]) > obj.pdf([3.0, 3.0]) > obj.pdf([3.9, 3.9])

    def test_gaussian_zero_outside(self):
        obj = TruncatedGaussianObject("g", Rect([0.0, 0.0], [4.0, 4.0]))
        assert obj.pdf([5.0, 5.0]) == 0.0


class TestDiscretize:
    def test_discretize_shape_and_probs(self, box_object):
        disc = box_object.discretize(64)
        assert disc.oid == "u"
        assert disc.num_samples == 64
        assert disc.probabilities.sum() == pytest.approx(1.0)

    def test_discretize_deterministic_default_rng(self, box_object):
        a = box_object.discretize(16)
        b = box_object.discretize(16)
        assert np.array_equal(a.samples, b.samples)

    def test_discretize_requires_positive_n(self, box_object):
        with pytest.raises(ValueError):
            box_object.discretize(0)


class TestSectionThreeTwoGeometry:
    def test_single_quadrant_region_one_rectangle(self, box_object):
        q = [5.0, 5.0]
        rects = box_object.filter_rectangles(q)
        assert len(rects) == 1
        # Formed by the farthest region corner from q.
        farthest = box_object.region.farthest_corner(q)
        assert rects[0] == dominance_rectangle(farthest, q)

    def test_straddling_region_multiple_rectangles(self):
        # The u2 of Fig. 3: region spans two sub-quadrants of q.
        obj = UniformBoxObject("u2", Rect([4.0, 6.0], [6.5, 7.0]))
        rects = obj.filter_rectangles([5.0, 5.0])
        assert len(rects) == 2

    def test_filter_rectangles_cover_any_dominating_sample(self, rng):
        """Every point of the region that can dominate q w.r.t. some region
        point lies in the union of the filter rectangles (completeness)."""
        from repro.geometry.dominance import dynamically_dominates

        obj = UniformBoxObject("u", Rect([3.0, 4.0], [7.0, 6.5]))
        q = np.array([5.0, 5.0])
        rects = obj.filter_rectangles(q)
        centers = obj.sample(100, rng)
        dominators = obj.sample(100, rng)
        for center in centers:
            for p in dominators:
                if dynamically_dominates(p, q, center):
                    assert any(r.contains_point(p) for r in rects)

    def test_must_contain_rectangle_single_quadrant(self, box_object):
        q = [5.0, 5.0]
        rect = box_object.must_contain_rectangle(q)
        assert rect is not None
        nearest = box_object.region.nearest_corner(q)
        # Inner bound: exactly the naive rectangle, never the ulp-widened
        # filter rectangle (which may over-approximate).
        h = np.abs(np.asarray(q, dtype=float) - nearest)
        assert rect == Rect(nearest - h, nearest + h)
        widened = dominance_rectangle(nearest, q)
        assert widened.contains_rect(rect)

    def test_must_contain_rectangle_none_when_straddling(self):
        obj = UniformBoxObject("u2", Rect([4.0, 6.0], [6.5, 7.0]))
        assert obj.must_contain_rectangle([5.0, 5.0]) is None

    def test_must_contain_rectangle_soundness(self, rng):
        """A point inside the must-contain rectangle dominates q w.r.t.
        every point of the region."""
        from repro.geometry.dominance import dynamically_dominates

        obj = UniformBoxObject("u", Rect([6.0, 6.0], [8.0, 7.0]))
        q = np.array([5.0, 5.0])
        rect = obj.must_contain_rectangle(q)
        assert rect is not None
        inner = rect.center + rect.extents * 0.1
        for center in obj.sample(200, rng):
            assert dynamically_dominates(inner, q, center)
