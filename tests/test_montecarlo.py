"""Unit tests for the Monte-Carlo PRSQ probability estimator."""

import numpy as np
import pytest

from repro.prsq.montecarlo import (
    ProbabilityEstimate,
    sample_reverse_skyline_probability,
)
from repro.prsq.probability import reverse_skyline_probability
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from tests.conftest import make_uncertain_dataset


class TestEstimateContainer:
    def test_confidence_interval_clamped(self):
        est = ProbabilityEstimate(value=0.98, std_error=0.05, worlds=100)
        lo, hi = est.confidence_interval()
        assert 0.0 <= lo <= hi <= 1.0

    def test_contains_uses_wide_interval(self):
        est = ProbabilityEstimate(value=0.5, std_error=0.05, worlds=100)
        assert 0.55 in est
        assert 0.99 not in est


class TestEstimator:
    def test_deterministic_case_exact(self):
        """With certain objects the estimate is exact regardless of worlds."""
        ds = UncertainDataset(
            [
                UncertainObject("u", [[2.0, 2.0]]),
                UncertainObject("v", [[2.5, 2.5]]),
            ]
        )
        est = sample_reverse_skyline_probability(ds, "u", [3.0, 3.0], worlds=50)
        assert est.value == 0.0
        est2 = sample_reverse_skyline_probability(ds, "v", [3.0, 3.0], worlds=50)
        assert est2.value == 1.0

    @pytest.mark.parametrize("seed", range(4))
    def test_converges_to_exact_probability(self, seed):
        rng = np.random.default_rng(seed)
        ds = make_uncertain_dataset(rng, n=6, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        exact = reverse_skyline_probability(ds, target, q, use_index=False)
        est = sample_reverse_skyline_probability(
            ds, target, q, worlds=3_000, rng=np.random.default_rng(seed + 100)
        )
        assert exact in est  # inside the ~99.9% interval

    def test_respects_sample_probabilities(self):
        ds = UncertainDataset(
            [
                UncertainObject("u", [[2.0, 2.0]]),
                UncertainObject("v", [[2.5, 2.5], [9.0, 9.0]], [0.9, 0.1]),
            ]
        )
        est = sample_reverse_skyline_probability(
            ds, "u", [3.0, 3.0], worlds=4_000, rng=np.random.default_rng(1)
        )
        assert est.value == pytest.approx(0.1, abs=0.03)

    def test_worlds_validation(self, rng):
        ds = make_uncertain_dataset(rng, n=3, dims=2)
        with pytest.raises(ValueError):
            sample_reverse_skyline_probability(ds, ds.ids()[0], [1.0, 1.0], worlds=0)

    def test_std_error_shrinks_with_worlds(self, rng):
        ds = make_uncertain_dataset(rng, n=6, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        small = sample_reverse_skyline_probability(
            ds, target, q, worlds=100, rng=np.random.default_rng(0)
        )
        large = sample_reverse_skyline_probability(
            ds, target, q, worlds=10_000, rng=np.random.default_rng(0)
        )
        assert large.std_error <= small.std_error
