"""Unit tests for the Monte-Carlo PRSQ probability estimator."""

import numpy as np
import pytest

from repro.prsq.montecarlo import (
    ProbabilityEstimate,
    sample_reverse_skyline_probability,
)
from repro.prsq.probability import reverse_skyline_probability
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from tests.conftest import make_uncertain_dataset


class TestEstimateContainer:
    def test_confidence_interval_clamped(self):
        est = ProbabilityEstimate(value=0.98, std_error=0.05, worlds=100)
        lo, hi = est.confidence_interval()
        assert 0.0 <= lo <= hi <= 1.0

    def test_contains_uses_wide_interval(self):
        est = ProbabilityEstimate(value=0.5, std_error=0.05, worlds=100)
        assert 0.55 in est
        assert 0.99 not in est

    def test_wilson_interval_not_degenerate_at_certainty(self):
        """At an observed 0 or 1 the interval must keep real width.

        The old normal approximation collapsed to ~±3e-6 (the 1e-12
        variance floor), so a true probability of e.g. 0.002 that sampled
        0/1000 hits fell outside and flaked the exact-vs-MC property.
        """
        at_zero = ProbabilityEstimate(value=0.0, std_error=0.0, worlds=1_000)
        lo, hi = at_zero.confidence_interval()
        assert lo == 0.0
        assert hi > 1e-3  # z^2 / (n + z^2) ~ 0.0038
        assert 0.002 in at_zero
        at_one = ProbabilityEstimate(value=1.0, std_error=0.0, worlds=1_000)
        lo, hi = at_one.confidence_interval()
        assert hi == 1.0
        assert lo < 1.0 - 1e-3
        assert 0.998 in at_one

    def test_wilson_matches_closed_form(self):
        est = ProbabilityEstimate(value=0.3, std_error=0.0, worlds=200)
        z = 1.96
        n, p = 200, 0.3
        denominator = 1 + z * z / n
        center = (p + z * z / (2 * n)) / denominator
        half = z / denominator * ((p * (1 - p) / n + z * z / (4 * n * n)) ** 0.5)
        lo, hi = est.confidence_interval(z=z)
        assert lo == pytest.approx(center - half)
        assert hi == pytest.approx(center + half)


class TestEstimator:
    def test_deterministic_case_exact(self):
        """With certain objects the estimate is exact regardless of worlds."""
        ds = UncertainDataset(
            [
                UncertainObject("u", [[2.0, 2.0]]),
                UncertainObject("v", [[2.5, 2.5]]),
            ]
        )
        est = sample_reverse_skyline_probability(ds, "u", [3.0, 3.0], worlds=50)
        assert est.value == 0.0
        est2 = sample_reverse_skyline_probability(ds, "v", [3.0, 3.0], worlds=50)
        assert est2.value == 1.0

    @pytest.mark.parametrize("seed", range(4))
    def test_converges_to_exact_probability(self, seed):
        rng = np.random.default_rng(seed)
        ds = make_uncertain_dataset(rng, n=6, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        exact = reverse_skyline_probability(ds, target, q, use_index=False)
        est = sample_reverse_skyline_probability(
            ds, target, q, worlds=3_000, rng=np.random.default_rng(seed + 100)
        )
        assert exact in est  # inside the ~99.9% interval

    def test_respects_sample_probabilities(self):
        ds = UncertainDataset(
            [
                UncertainObject("u", [[2.0, 2.0]]),
                UncertainObject("v", [[2.5, 2.5], [9.0, 9.0]], [0.9, 0.1]),
            ]
        )
        est = sample_reverse_skyline_probability(
            ds, "u", [3.0, 3.0], worlds=4_000, rng=np.random.default_rng(1)
        )
        assert est.value == pytest.approx(0.1, abs=0.03)

    def test_distinct_seeds_give_independent_estimates(self, rng):
        """Repeated calls must not silently reuse one generator state.

        The old default of ``rng or np.random.default_rng(0)`` made every
        nominally independent estimate identical; seeds now vary the draw
        while the default stays reproducible.
        """
        ds = make_uncertain_dataset(rng, n=8, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        default_a = sample_reverse_skyline_probability(ds, target, q, worlds=300)
        default_b = sample_reverse_skyline_probability(ds, target, q, worlds=300)
        assert default_a.value == default_b.value  # documented default seed
        seeded = [
            sample_reverse_skyline_probability(
                ds, target, q, worlds=300, seed=s
            ).value
            for s in range(8)
        ]
        assert seeded[0] == default_a.value  # seed=0 is the default
        assert len(set(seeded)) > 1  # distinct seeds decorrelate

    def test_worlds_validation(self, rng):
        ds = make_uncertain_dataset(rng, n=3, dims=2)
        with pytest.raises(ValueError):
            sample_reverse_skyline_probability(ds, ds.ids()[0], [1.0, 1.0], worlds=0)

    def test_std_error_shrinks_with_worlds(self, rng):
        ds = make_uncertain_dataset(rng, n=6, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        small = sample_reverse_skyline_probability(
            ds, target, q, worlds=100, rng=np.random.default_rng(0)
        )
        large = sample_reverse_skyline_probability(
            ds, target, q, worlds=10_000, rng=np.random.default_rng(0)
        )
        assert large.std_error <= small.std_error
