"""The serve subsystem: protocol, admission, writer, transports, client.

Three layers of coverage, cheapest first:

* unit tests against :class:`AdmissionController` / :class:`SingleWriter`
  / :class:`RequestHandler` driven with plain dicts (no sockets);
* end-to-end over real sockets: one :class:`ReproServer` on an ephemeral
  port, :class:`RemoteClient` multiplexing concurrent requests, the HTTP
  front end exercised with hand-written requests;
* overload injection: the admission slot is held from the test (the
  server shares our event loop), so rejection is deterministic — every
  shed request must come back as a structured ``overloaded`` envelope
  with a ``retry_after_s`` hint on a connection that stays usable.

Plus the thread-safety hammer for the shared LRU cache and the CLI
``batch`` graceful-shutdown path (SIGINT / broken pipe).
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.api.remote import RemoteClient
from repro.engine.cache import LRUCache
from repro.engine.spec import CausalitySpec, PRSQSpec, UpdateSpec
from repro.exceptions import (
    OverloadedError,
    RemoteQueryError,
    UnknownDatasetError,
)
from repro.serve import (
    AdmissionController,
    ReproServer,
    RequestHandler,
    ServeConfig,
    DatasetService,
)
from repro.uncertain import UncertainDataset, UncertainObject
from repro.uncertain.delta import DatasetDelta

Q = (5.0, 5.0)


def _dataset(n=24, seed=11):
    rng = np.random.default_rng(seed)
    return UncertainDataset(
        [
            UncertainObject(
                f"o{i}", rng.uniform(0.0, 10.0, size=(3, 2))
            )
            for i in range(n)
        ]
    )


def _config(**overrides):
    base = dict(port=0, threads=2, cache_size=256)
    base.update(overrides)
    return ServeConfig(**base)


# ---------------------------------------------------------------------------
# admission controller
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_fast_path_and_release(self):
        async def main():
            ctl = AdmissionController(max_inflight=2, max_queue=4)
            await ctl.acquire()
            await ctl.acquire()
            assert ctl.inflight == 2
            ctl.release(0.01)
            assert ctl.inflight == 1
            ctl.release(0.01)
            assert ctl.inflight == 0

        asyncio.run(main())

    def test_rejects_when_queue_full_with_hint(self):
        async def main():
            ctl = AdmissionController(max_inflight=1, max_queue=0)
            await ctl.acquire()
            with pytest.raises(OverloadedError) as err:
                await ctl.acquire()
            assert err.value.retry_after_s >= 0.05
            assert err.value.code == "overloaded"
            ctl.release()
            await ctl.acquire()  # usable again

        asyncio.run(main())

    def test_fifo_handoff(self):
        async def main():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            await ctl.acquire()
            order = []

            async def waiter(tag):
                await ctl.acquire()
                order.append(tag)
                ctl.release()

            tasks = [asyncio.ensure_future(waiter(i)) for i in range(3)]
            await asyncio.sleep(0)  # enqueue in order
            ctl.release()
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]
            assert ctl.inflight == 0 and ctl.queue_depth == 0

        asyncio.run(main())

    def test_cancelled_waiter_does_not_leak_slot(self):
        async def main():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            await ctl.acquire()
            task = asyncio.ensure_future(ctl.acquire())
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            ctl.release()
            assert ctl.inflight == 0
            await ctl.acquire()  # slot is still grantable
            ctl.release()

        asyncio.run(main())


# ---------------------------------------------------------------------------
# handler-level protocol semantics (no sockets)
# ---------------------------------------------------------------------------
async def _one(handler, request):
    frames = [frame async for frame in handler.handle(request)]
    assert len(frames) == 1
    return frames[0]


class TestHandler:
    def run_service(self, coro_fn, **config_overrides):
        async def main():
            async with DatasetService(
                {"default": _dataset()}, _config(**config_overrides)
            ) as service:
                await coro_fn(RequestHandler(service), service)

        asyncio.run(main())

    def test_ping_and_stats(self):
        async def body(handler, service):
            pong = await _one(handler, {"id": 7, "op": "ping"})
            assert pong == {
                "id": 7, "ok": True, "pong": True, "datasets": ["default"],
                "status": {"default": "ok"}, "degraded": [],
            }
            stats = await _one(handler, {"id": 8, "op": "stats"})
            assert stats["ok"] and "slo" in stats and "metrics" in stats
            assert stats["datasets"]["default"]["version"] == 0

        self.run_service(body)

    def test_query_carries_envelope_and_version(self):
        async def body(handler, service):
            frame = await _one(handler, {
                "id": 1, "op": "query",
                "spec": {"kind": "prsq", "q": list(Q), "alpha": 0.4},
            })
            assert frame["ok"] is True
            assert frame["session_version"] == 0
            result = frame["result"]
            assert result["kind"] == "prsq" and result["ok"] is True
            assert result["spec"]["alpha"] == 0.4  # spec echo, verbatim v2

        self.run_service(body)

    def test_query_data_error_is_an_envelope_not_a_drop(self):
        async def body(handler, service):
            frame = await _one(handler, {
                "id": 2, "op": "query",
                "spec": {
                    "kind": "causality", "an": "nope",
                    "q": list(Q), "alpha": 0.4,
                },
            })
            assert frame["ok"] is False and "result" in frame
            assert frame["result"]["error"]["code"] == "unknown_object"

        self.run_service(body)

    def test_request_level_errors_are_coded(self):
        async def body(handler, service):
            bad_op = await _one(handler, {"id": 3, "op": "mystery"})
            assert bad_op["error"]["code"] == "invalid_request"
            bad_kind = await _one(handler, {
                "id": 4, "op": "query", "spec": {"kind": "nope"},
            })
            assert bad_kind["error"]["code"] == "unknown_query_kind"
            bad_ds = await _one(handler, {
                "id": 5, "op": "query", "dataset": "ghost",
                "spec": {"kind": "prsq", "q": list(Q), "alpha": 0.4},
            })
            assert bad_ds["error"]["code"] == "unknown_dataset"
            no_spec = await _one(handler, {"id": 6, "op": "query"})
            assert no_spec["error"]["code"] == "invalid_request"
            not_dict = await _one(handler, [1, 2, 3])
            assert not_dict["error"]["code"] == "invalid_request"

        self.run_service(body)

    def test_batch_streams_seq_frames_then_summary(self):
        async def body(handler, service):
            frames = [
                frame async for frame in handler.handle({
                    "id": 9, "op": "batch",
                    "specs": [
                        {"kind": "prsq", "q": list(Q), "alpha": 0.3},
                        {"kind": "causality", "an": "nope",
                         "q": list(Q), "alpha": 0.3},
                    ],
                })
            ]
            assert [f.get("seq") for f in frames[:-1]] == [0, 1]
            assert frames[0]["ok"] is True
            assert frames[1]["ok"] is False
            done = frames[-1]
            assert done["done"] and done["count"] == 2 and done["failures"] == 1

        self.run_service(body)

    def test_mutation_bumps_version_and_is_visible(self):
        async def body(handler, service):
            spec = UpdateSpec(
                inserts=(UncertainObject("fresh", [[1.0, 1.0]], [1.0]),)
            )
            from repro.api.registry import REGISTRY

            frame = await _one(handler, {
                "id": 10, "op": "query", "spec": REGISTRY.spec_to_dict(spec),
            })
            assert frame["ok"] and frame["session_version"] == 1
            # subsequent reads see the new object at the new version
            probe = await _one(handler, {
                "id": 11, "op": "query",
                "spec": {"kind": "prsq", "q": list(Q), "alpha": 0.01,
                         "want": "probabilities"},
            })
            assert probe["session_version"] == 1
            values = probe["result"]["value"]["probabilities"]
            assert any(key.endswith("fresh") or key == "fresh"
                       for key in values)

        self.run_service(body)

    def test_failed_mutation_leaves_version_alone(self):
        async def body(handler, service):
            from repro.api.registry import REGISTRY

            spec = UpdateSpec(deletes=("ghost",))
            frame = await _one(handler, {
                "id": 12, "op": "query", "spec": REGISTRY.spec_to_dict(spec),
            })
            assert frame["ok"] is False
            assert frame["session_version"] == 0
            assert frame["result"]["error"]["code"] == "unknown_object"
            assert service.state("default").published.version == 0

        self.run_service(body)


# ---------------------------------------------------------------------------
# snapshot isolation at the service level
# ---------------------------------------------------------------------------
def test_inflight_reader_keeps_old_snapshot():
    """A reader that grabbed the published snapshot before a write keeps
    serving the old frozen arrays even while the write lands."""

    async def main():
        async with DatasetService(
            {"default": _dataset()}, _config()
        ) as service:
            state = service.state("default")
            old = state.published
            old_ids = set(old.dataset.ids())
            # write lands...
            spec = UpdateSpec(
                inserts=(UncertainObject("late", [[9.0, 9.0]], [1.0]),)
            )
            envelope, version = await service.execute(spec)
            assert envelope.ok and version == 1
            # ...but the pre-write snapshot is untouched
            assert set(old.dataset.ids()) == old_ids
            assert state.published is not old
            assert "late" in set(state.published.dataset.ids())

    asyncio.run(main())


# ---------------------------------------------------------------------------
# sockets end to end
# ---------------------------------------------------------------------------
class TestEndToEnd:
    def test_concurrent_multiplexed_queries_and_update(self):
        async def main():
            async with ReproServer({"default": _dataset()}, _config()) as srv:
                client = await RemoteClient.connect(port=srv.port)
                async with client:
                    results = await asyncio.gather(*[
                        client.prsq((float(i % 7), 5.0), alpha=0.4)
                        for i in range(16)
                    ])
                    assert all(r.ok for r in results)
                    up = await client.insert(
                        "wired", samples=[[2.0, 2.0]], probabilities=[1.0]
                    )
                    assert up.ok and client.session_version == 1
                    envelopes = await (
                        client.batch()
                        .prsq(Q, alpha=0.2)
                        .prsq(Q, alpha=0.8)
                        .run()
                    )
                    assert [e.ok for e in envelopes] == [True, True]
                    stats = await client.stats()
                    assert stats["datasets"]["default"]["version"] == 1
                    assert (
                        stats["service"]["admission"]["rejected"] == 0
                    )

        asyncio.run(main())

    def test_single_query_raises_typed_remote_errors(self):
        async def main():
            async with ReproServer({"default": _dataset()}, _config()) as srv:
                async with await RemoteClient.connect(port=srv.port) as client:
                    with pytest.raises(RemoteQueryError) as err:
                        await client.causality("ghost", Q, alpha=0.4)
                    assert err.value.code == "unknown_object"
                    with pytest.raises(UnknownDatasetError):
                        await client.prsq(Q, alpha=0.4, )  # warm-up ok
                        await client.query(
                            PRSQSpec(q=Q, alpha=0.4), dataset="ghost"
                        )

        asyncio.run(main())

    def test_overload_yields_structured_envelopes_not_drops(self):
        """Fill the only admission slot from the test (the server shares
        our loop), so every read is shed deterministically — as coded
        ``overloaded`` frames with retry hints on a live connection."""

        async def main():
            config = _config(max_inflight=1, max_queue=0)
            async with ReproServer({"default": _dataset()}, config) as srv:
                async with await RemoteClient.connect(port=srv.port) as client:
                    await srv.service.admission.acquire()  # hold the slot
                    shed = 0
                    for _ in range(5):
                        try:
                            await client.prsq(Q, alpha=0.4)
                        except OverloadedError as exc:
                            shed += 1
                            assert exc.retry_after_s >= 0.05
                    assert shed == 5
                    srv.service.admission.release()
                    # the connection survived the shedding
                    result = await client.prsq(Q, alpha=0.4)
                    assert result.ok
                    stats = await client.stats()
                    assert stats["service"]["admission"]["rejected"] >= 5

        asyncio.run(main())

    def test_per_connection_cap_sheds_excess_frames(self):
        async def main():
            config = _config(per_connection=1, max_inflight=1)
            async with ReproServer({"default": _dataset()}, config) as srv:
                # hold the admission slot so the first request parks and
                # the second must exceed the per-connection cap
                await srv.service.admission.acquire()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port
                )
                spec = {"kind": "prsq", "q": list(Q), "alpha": 0.4}
                for rid in (1, 2):
                    writer.write(json.dumps(
                        {"id": rid, "op": "query", "spec": spec}
                    ).encode() + b"\n")
                await writer.drain()
                first = json.loads(await reader.readline())
                assert first["error"]["code"] == "overloaded"
                assert first["id"] == 2  # frame 1 is parked, frame 2 shed
                srv.service.admission.release()
                second = json.loads(await reader.readline())
                assert second["id"] == 1 and second["ok"]
                writer.close()

        asyncio.run(main())

    def test_write_queue_overflow_is_overloaded(self):
        async def main():
            async with DatasetService(
                {"default": _dataset()}, _config(write_queue=1)
            ) as service:
                state = service.state("default")
                blocker = threading.Event()
                original = state._apply_write

                def slow_apply(spec):
                    blocker.wait(timeout=5.0)
                    return original(spec)

                state._apply_write = state.writer._apply = slow_apply
                try:
                    def update_spec(tag):
                        return UpdateSpec(inserts=(
                            UncertainObject(tag, [[1.0, 1.0]], [1.0]),
                        ))

                    first = asyncio.ensure_future(
                        service.execute(update_spec("w0"))
                    )
                    await asyncio.sleep(0.05)  # w0 occupies the drain
                    second = asyncio.ensure_future(
                        service.execute(update_spec("w1"))
                    )
                    await asyncio.sleep(0.05)  # w1 fills the queue
                    with pytest.raises(OverloadedError):
                        await service.execute(update_spec("w2"))
                finally:
                    blocker.set()
                env0, v0 = await first
                env1, v1 = await second
                assert env0.ok and env1.ok and (v0, v1) == (1, 2)

        asyncio.run(main())


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------
async def _http(port, raw):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


class TestHttp:
    def test_healthz_query_and_routes(self):
        async def main():
            async with ReproServer({"default": _dataset()}, _config()) as srv:
                status, _, body = await _http(
                    srv.port,
                    b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
                )
                assert status == 200 and json.loads(body)["pong"]

                payload = json.dumps(
                    {"kind": "prsq", "q": list(Q), "alpha": 0.4}
                ).encode()
                status, headers, body = await _http(
                    srv.port,
                    b"POST /query HTTP/1.1\r\nContent-Length: "
                    + str(len(payload)).encode()
                    + b"\r\nConnection: close\r\n\r\n" + payload,
                )
                assert status == 200
                frame = json.loads(body)
                assert frame["ok"] and frame["result"]["kind"] == "prsq"

                status, _, body = await _http(
                    srv.port,
                    b"GET /nowhere HTTP/1.1\r\nConnection: close\r\n\r\n",
                )
                assert status == 400
                assert json.loads(body)["error"]["code"] == "invalid_request"

        asyncio.run(main())

    def test_dataset_query_parameter_routes_named_dataset(self):
        async def main():
            async with ReproServer({"mart": _dataset()}, _config()) as srv:
                payload = json.dumps(
                    {"kind": "prsq", "q": list(Q), "alpha": 0.4}
                ).encode()

                # default dataset is not hosted -> unknown_dataset / 404
                status, _, body = await _http(
                    srv.port,
                    b"POST /query HTTP/1.1\r\nContent-Length: "
                    + str(len(payload)).encode()
                    + b"\r\nConnection: close\r\n\r\n" + payload,
                )
                assert status == 404
                assert json.loads(body)["error"]["code"] == "unknown_dataset"

                # ?dataset= picks the hosted one without touching the body
                status, _, body = await _http(
                    srv.port,
                    b"POST /query?dataset=mart HTTP/1.1\r\nContent-Length: "
                    + str(len(payload)).encode()
                    + b"\r\nConnection: close\r\n\r\n" + payload,
                )
                assert status == 200
                frame = json.loads(body)
                assert frame["ok"] and frame["result"]["kind"] == "prsq"

        asyncio.run(main())

    def test_batch_returns_ndjson_body(self):
        async def main():
            async with ReproServer({"default": _dataset()}, _config()) as srv:
                specs = json.dumps([
                    {"kind": "prsq", "q": list(Q), "alpha": 0.3},
                    {"kind": "prsq", "q": list(Q), "alpha": 0.9},
                ]).encode()
                status, headers, body = await _http(
                    srv.port,
                    b"POST /batch HTTP/1.1\r\nContent-Length: "
                    + str(len(specs)).encode()
                    + b"\r\nConnection: close\r\n\r\n" + specs,
                )
                assert status == 200
                assert headers["content-type"] == "application/x-ndjson"
                frames = [json.loads(line) for line in body.splitlines()]
                assert len(frames) == 3 and frames[-1]["done"]

        asyncio.run(main())

    def test_overload_maps_to_429_with_retry_after(self):
        async def main():
            config = _config(max_inflight=1, max_queue=0)
            async with ReproServer({"default": _dataset()}, config) as srv:
                await srv.service.admission.acquire()
                payload = json.dumps(
                    {"kind": "prsq", "q": list(Q), "alpha": 0.4}
                ).encode()
                status, headers, body = await _http(
                    srv.port,
                    b"POST /query HTTP/1.1\r\nContent-Length: "
                    + str(len(payload)).encode()
                    + b"\r\nConnection: close\r\n\r\n" + payload,
                )
                srv.service.admission.release()
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert json.loads(body)["error"]["code"] == "overloaded"

        asyncio.run(main())


# ---------------------------------------------------------------------------
# LRU thread-safety hammer (satellite: shared cache under concurrency)
# ---------------------------------------------------------------------------
def test_lru_cache_is_thread_safe_under_hammering():
    cache = LRUCache(maxsize=32)
    errors = []
    barrier = threading.Barrier(8)

    def worker(worker_id):
        try:
            barrier.wait()
            for i in range(400):
                key = ("k", (worker_id + i) % 48)
                value, _hit = cache.get_or_compute(key, lambda k=key: k[1] * 2)
                assert value == key[1] * 2
                if i % 7 == 0:
                    cache.put(key, key[1] * 2)
                len(cache)
                key in cache
        except Exception as exc:  # pragma: no cover - only on races
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(cache) <= 32
    stats = cache.stats
    assert stats.hits + stats.misses == 8 * 400
    # evictions seen and accounted (48 keys through a 32-slot cache)
    assert stats.evictions > 0


# ---------------------------------------------------------------------------
# CLI batch graceful shutdown (satellite: SIGINT / broken pipe)
# ---------------------------------------------------------------------------
class TestCliBatchShutdown:
    def _run(self, tmp_path, monkeypatch, capsys, exc):
        from repro.api.client import BatchBuilder
        from repro.io import cli
        from repro.io.csvio import save_uncertain_csv

        data = tmp_path / "d.csv"
        save_uncertain_csv(_dataset(n=8), data)
        queries = tmp_path / "q.json"
        queries.write_text(json.dumps([
            {"kind": "prsq", "q": list(Q), "alpha": 0.4},
            {"kind": "prsq", "q": list(Q), "alpha": 0.6},
        ]))

        original = BatchBuilder.stream

        def interrupted_stream(self, *args, **kwargs):
            iterator = original(self, *args, **kwargs)
            yield next(iterator)  # one full envelope gets out...
            raise exc  # ...then the consumer/user goes away

        monkeypatch.setattr(BatchBuilder, "stream", interrupted_stream)
        code = cli.main([
            "batch", "--data", str(data), "--queries", str(queries),
            "--stream",
        ])
        return code, capsys.readouterr()

    def test_keyboard_interrupt_flushes_and_exits_130(
        self, tmp_path, monkeypatch, capsys
    ):
        code, captured = self._run(
            tmp_path, monkeypatch, capsys, KeyboardInterrupt()
        )
        assert code == 130
        lines = [l for l in captured.out.splitlines() if l.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["ok"] is True  # intact NDJSON line
        assert "stopped early" in captured.err

    def test_broken_pipe_exits_nonzero_with_summary(
        self, tmp_path, monkeypatch, capsys
    ):
        code, captured = self._run(
            tmp_path, monkeypatch, capsys, BrokenPipeError()
        )
        assert code == 1
        assert "stopped early: output pipe closed" in captured.err

    def test_tracer_sink_is_closed_on_interrupt(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.api.client import BatchBuilder
        from repro.io import cli
        from repro.io.csvio import save_uncertain_csv

        data = tmp_path / "d.csv"
        save_uncertain_csv(_dataset(n=8), data)
        queries = tmp_path / "q.json"
        queries.write_text(json.dumps([
            {"kind": "prsq", "q": list(Q), "alpha": 0.4},
            {"kind": "prsq", "q": list(Q), "alpha": 0.6},
        ]))
        trace = tmp_path / "t.ndjson"

        original = BatchBuilder.stream

        def interrupted_stream(self, *args, **kwargs):
            iterator = original(self, *args, **kwargs)
            yield next(iterator)
            raise KeyboardInterrupt()

        monkeypatch.setattr(BatchBuilder, "stream", interrupted_stream)
        code = cli.main([
            "batch", "--data", str(data), "--queries", str(queries),
            "--stream", "--trace", str(trace),
        ])
        assert code == 130
        # the owned sink was flushed+closed on the shutdown path: the one
        # completed query's span tree is on disk, valid NDJSON
        lines = trace.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
