"""Unit and integration tests for algorithm CR (CRPRSQ, Section 4)."""

import numpy as np
import pytest

from repro.core.cp import compute_causality
from repro.core.cr import compute_causality_certain
from repro.core.lemmas import lemma7_certain_candidates_are_causes
from repro.core.model import CauseKind
from repro.core.naive import brute_force_causality
from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dynamically_dominates
from repro.skyline.reverse import reverse_skyline
from repro.uncertain.dataset import CertainDataset


class TestKnownScenarios:
    def test_fig5_style_example(self):
        """A non-reverse-skyline object whose dominators split responsibility
        equally (Lemma 7 / Equation (4))."""
        ds = CertainDataset(
            [
                [4.0, 4.0],   # an
                [4.3, 4.3],   # b - dominates q w.r.t. an
                [4.5, 4.2],   # d - dominates
                [4.2, 4.6],   # e - dominates
                [9.0, 0.5],   # far away
            ],
            ids=["an", "b", "d", "e", "far"],
        )
        res = compute_causality_certain(ds, "an", [5.0, 5.0])
        assert res.cause_ids() == ["b", "d", "e"]
        for oid in ("b", "d", "e"):
            assert res.responsibility(oid) == pytest.approx(1 / 3)
        assert res.causes["b"].contingency_set == frozenset({"d", "e"})

    def test_single_dominator_is_counterfactual(self):
        ds = CertainDataset([[4.0, 4.0], [4.4, 4.4]], ids=["an", "c"])
        res = compute_causality_certain(ds, "an", [5.0, 5.0])
        assert res.cause_ids() == ["c"]
        assert res.causes["c"].kind is CauseKind.COUNTERFACTUAL
        assert res.responsibility("c") == 1.0

    def test_reverse_skyline_member_rejected(self):
        ds = CertainDataset([[4.0, 4.0], [9.0, 9.0]], ids=["member", "other"])
        with pytest.raises(NotANonAnswerError):
            compute_causality_certain(ds, "member", [5.0, 5.0])


class TestLemmaSeven:
    @pytest.mark.parametrize("seed", range(8))
    def test_candidates_equal_causes(self, seed):
        rng = np.random.default_rng(seed)
        ds = CertainDataset(rng.uniform(0, 10, size=(15, 2)))
        q = rng.uniform(0, 10, size=2)
        members = set(reverse_skyline(ds, q))
        for oid in ds.ids():
            if oid in members:
                continue
            res = compute_causality_certain(ds, oid, q)
            an_point = ds.point_of(oid)
            dominators = {
                other.oid
                for other in ds
                if other.oid != oid
                and dynamically_dominates(other.samples[0], q, an_point)
            }
            assert set(res.cause_ids()) == dominators
            for cause in res.causes.values():
                assert cause.responsibility == pytest.approx(1 / len(dominators))

    def test_lemma7_helper(self):
        mapping = lemma7_certain_candidates_are_causes(None, {"a", "b", "c"})
        assert mapping["a"] == frozenset({"b", "c"})
        assert mapping["b"] == frozenset({"a", "c"})


class TestAgainstOtherAlgorithms:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed + 20)
        ds = CertainDataset(rng.uniform(0, 10, size=(9, 2)))
        q = rng.uniform(0, 10, size=2)
        members = set(reverse_skyline(ds, q))
        for oid in ds.ids():
            if oid in members:
                continue
            cr = compute_causality_certain(ds, oid, q)
            bf = brute_force_causality(ds, oid, q, alpha=0.5)
            assert cr.same_causality(bf)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_cp_on_certain_data(self, seed):
        """CR must agree with CP run on the 1-sample uncertain encoding."""
        rng = np.random.default_rng(seed + 40)
        ds = CertainDataset(rng.uniform(0, 10, size=(12, 2)))
        q = rng.uniform(0, 10, size=2)
        members = set(reverse_skyline(ds, q))
        for oid in ds.ids():
            if oid in members:
                continue
            cr = compute_causality_certain(ds, oid, q)
            cp = compute_causality(ds, oid, q, alpha=0.5)
            assert cr.same_causality(cp)


class TestCosts:
    def test_index_and_scan_agree(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(40, 2)))
        q = rng.uniform(0, 10, size=2)
        members = set(reverse_skyline(ds, q))
        non_answers = [oid for oid in ds.ids() if oid not in members]
        for oid in non_answers[:5]:
            a = compute_causality_certain(ds, oid, q, use_index=True)
            b = compute_causality_certain(ds, oid, q, use_index=False)
            assert a.same_causality(b)
            assert a.stats.node_accesses > 0
            assert b.stats.node_accesses == 0

    def test_stats_candidates_equals_causes(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(30, 2)))
        q = rng.uniform(0, 10, size=2)
        members = set(reverse_skyline(ds, q))
        for oid in ds.ids():
            if oid in members:
                continue
            res = compute_causality_certain(ds, oid, q)
            assert res.stats.candidates == len(res)
            break
