"""Mixed R-tree lifecycles: STR bulk load interleaved with insert/delete.

The live-update path relies on a single tree surviving an arbitrary
interleaving of bulk-loaded construction, incremental inserts (splits) and
deletes (condense + reinsertion).  Hypothesis drives random interleavings
with a tiny page size (fanout 4) so splits, underfull condensing, root
collapse and height changes all trigger constantly; after every step the
structural invariants are re-validated and a range query is compared
against a brute-force scan over the live entry set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_
from repro.geometry.rectangle import Rect
from repro.index.bulk import bulk_load
from repro.index.rtree import RTree

# 2 corners * 2 dims * 8 bytes + 8-byte pointer = 40 bytes/entry -> fanout 4
TINY_PAGE = 160


def _rect(rng):
    lo = rng.uniform(0.0, 100.0, size=2)
    return Rect(lo, lo + rng.uniform(0.0, 10.0, size=2))


def _brute_force(live, window):
    return sorted(payload for rect, payload in live if window.intersects(rect))


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_initial=st.integers(min_value=0, max_value=25),
    op_kinds=st.lists(
        st.sampled_from(["insert", "delete", "delete", "insert"]), max_size=30
    ),
)
def test_bulk_load_then_churn_keeps_invariants(seed, n_initial, op_kinds):
    rng = np.random.default_rng(seed)
    live = [(_rect(rng), i) for i in range(n_initial)]
    tree = bulk_load(list(live), dims=2, page_size=TINY_PAGE)
    tree.validate(allow_underfull=True)
    next_payload = n_initial

    for kind in op_kinds:
        if kind == "insert" or not live:
            entry = (_rect(rng), next_payload)
            next_payload += 1
            tree.insert(*entry)
            live.append(entry)
        else:
            victim = live.pop(int(rng.integers(len(live))))
            assert tree.delete(*victim) is True
        # invariants after *every* step, not just at the end
        tree.validate(allow_underfull=True)
        assert len(tree) == len(live)
        window = _rect(rng)
        assert sorted(tree.range_search(window)) == _brute_force(live, window)

    # full drain: deleting everything leaves a valid empty tree
    for entry in live:
        assert tree.delete(*entry) is True
    tree.validate(allow_underfull=True)
    assert len(tree) == 0 and tree.range_search(_rect(rng)) == []


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_delete_of_absent_entry_is_harmless(seed):
    rng = np.random.default_rng(seed)
    live = [(_rect(rng), i) for i in range(10)]
    tree = bulk_load(list(live), dims=2, page_size=TINY_PAGE)
    absent = _rect(rng)
    assert tree.delete(absent, "nope") is False
    # same rect, wrong payload: also a no-op
    assert tree.delete(live[0][0], "wrong-payload") is False
    assert len(tree) == 10
    tree.validate(allow_underfull=True)


def test_validate_still_catches_corruption():
    """The invariant checker itself must not have been weakened."""
    rng = np.random.default_rng(0)
    tree = bulk_load(
        [(_rect(rng), i) for i in range(30)], dims=2, page_size=TINY_PAGE
    )
    tree.size += 1  # simulate a bookkeeping bug
    with pytest.raises(IndexError_, match="size mismatch"):
        tree.validate(allow_underfull=True)
