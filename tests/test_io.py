"""Unit tests for CSV/JSON (de)serialization and the CLI."""

import json

import numpy as np
import pytest

from repro.core.cp import compute_causality
from repro.io.cli import main as cli_main
from repro.io.csvio import (
    load_certain_csv,
    load_uncertain_csv,
    save_certain_csv,
    save_uncertain_csv,
)
from repro.io.jsonio import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset_json,
    result_to_dict,
    save_dataset_json,
    save_result_json,
)
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject
from tests.conftest import make_uncertain_dataset


@pytest.fixture
def uncertain_ds(rng):
    return make_uncertain_dataset(rng, n=8, dims=2)


@pytest.fixture
def certain_ds(rng):
    return CertainDataset(
        rng.uniform(0, 10, size=(6, 3)), ids=[f"obj-{i}" for i in range(6)]
    )


class TestCsvRoundTrip:
    def test_certain_round_trip(self, certain_ds, tmp_path):
        path = tmp_path / "certain.csv"
        save_certain_csv(certain_ds, path)
        loaded = load_certain_csv(path)
        assert loaded.ids() == certain_ds.ids()
        assert np.array_equal(loaded.points, certain_ds.points)

    def test_uncertain_round_trip(self, uncertain_ds, tmp_path):
        path = tmp_path / "uncertain.csv"
        save_uncertain_csv(uncertain_ds, path)
        loaded = load_uncertain_csv(path)
        assert [str(oid) for oid in uncertain_ds.ids()] == loaded.ids()
        for obj in uncertain_ds:
            twin = loaded.get(str(obj.oid))
            assert np.array_equal(twin.samples, obj.samples)
            assert np.allclose(twin.probabilities, obj.probabilities)

    def test_uncertain_preserves_unequal_probabilities(self, tmp_path):
        ds = UncertainDataset(
            [UncertainObject("u", [[1.0, 2.0], [3.0, 4.0]], [0.25, 0.75])]
        )
        path = tmp_path / "u.csv"
        save_uncertain_csv(ds, path)
        loaded = load_uncertain_csv(path)
        assert loaded.get("u").probabilities.tolist() == [0.25, 0.75]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,attr0\n1,2\n")
        with pytest.raises(ValueError):
            load_certain_csv(path)
        with pytest.raises(ValueError):
            load_uncertain_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("id,attr0,attr1\n")
        with pytest.raises(ValueError):
            load_certain_csv(path)


class TestJsonRoundTrip:
    def test_uncertain_round_trip(self, uncertain_ds, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset_json(uncertain_ds, path)
        loaded = load_dataset_json(path)
        assert not isinstance(loaded, CertainDataset)
        assert loaded.ids() == uncertain_ds.ids()

    def test_certain_round_trip_preserves_type(self, certain_ds, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset_json(certain_ds, path)
        loaded = load_dataset_json(path)
        assert isinstance(loaded, CertainDataset)
        assert np.array_equal(loaded.points, certain_ds.points)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            dataset_from_dict({"kind": "mystery", "objects": []})

    def test_certain_kind_with_samples_rejected(self):
        payload = dataset_to_dict(
            UncertainDataset([UncertainObject("u", [[0, 0], [1, 1]])])
        )
        payload["kind"] = "certain"
        with pytest.raises(ValueError):
            dataset_from_dict(payload)

    def test_names_preserved(self, tmp_path):
        ds = UncertainDataset(
            [UncertainObject("u", [[0.0, 0.0]], name="Named One")]
        )
        path = tmp_path / "named.json"
        save_dataset_json(ds, path)
        assert load_dataset_json(path).get("u").name == "Named One"

    def test_result_serialization(self, tmp_path):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("cf", [[2.4, 2.4]]),
            ]
        )
        result = compute_causality(ds, "an", [3.0, 3.0], alpha=0.5)
        payload = result_to_dict(result)
        assert payload["an"] == "an"
        assert payload["causes"][0]["id"] == "cf"
        assert payload["causes"][0]["responsibility"] == 1.0
        path = tmp_path / "result.json"
        save_result_json(result, path)
        assert json.loads(path.read_text())["alpha"] == 0.5


class TestCli:
    def test_generate_and_prsq(self, tmp_path, capsys):
        data = tmp_path / "data.csv"
        assert cli_main(
            [
                "generate", "--kind", "uncertain", "--n", "40", "--dims", "2",
                "--radius", "200", "--out", str(data),
            ]
        ) == 0
        assert data.exists()
        assert cli_main(
            ["prsq", "--data", str(data), "--q", "5000", "5000", "--alpha", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "non-answer" in out or "answer" in out

    def test_explain_flow(self, tmp_path, capsys):
        data = tmp_path / "data.csv"
        cli_main(
            [
                "generate", "--kind", "uncertain", "--n", "60", "--dims", "2",
                "--radius", "300", "--seed", "3", "--out", str(data),
            ]
        )
        capsys.readouterr()
        cli_main(["prsq", "--data", str(data), "--q", "5000", "5000"])
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.endswith("non-answer")
        ]
        if not lines:
            pytest.skip("no non-answers in this draw")
        an = lines[0].split("\t")[0]
        assert cli_main(
            [
                "explain", "--data", str(data), "--q", "5000", "5000",
                "--an", an, "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["an"] == an

    def test_explain_certain_flow(self, tmp_path, capsys):
        data = tmp_path / "cars.csv"
        cli_main(
            [
                "generate", "--kind", "certain", "--n", "80", "--dims", "2",
                "--seed", "5", "--out", str(data),
            ]
        )
        capsys.readouterr()
        loaded = load_certain_csv(data)
        from repro.skyline.reverse import reverse_skyline

        members = set(reverse_skyline(loaded, [5000.0, 5000.0]))
        non_answers = [oid for oid in loaded.ids() if oid not in members]
        assert cli_main(
            [
                "explain-certain", "--data", str(data), "--q", "5000", "5000",
                "--an", non_answers[0],
            ]
        ) == 0
        assert "causes for non-answer" in capsys.readouterr().out

    def test_error_paths_return_nonzero(self, tmp_path, capsys):
        missing = tmp_path / "missing.csv"
        assert cli_main(
            ["prsq", "--data", str(missing), "--q", "1", "1"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_explain_answer_is_error(self, tmp_path, capsys):
        data = tmp_path / "cars.csv"
        cli_main(
            [
                "generate", "--kind", "certain", "--n", "30", "--dims", "2",
                "--seed", "7", "--out", str(data),
            ]
        )
        loaded = load_certain_csv(data)
        from repro.skyline.reverse import reverse_skyline

        member = reverse_skyline(loaded, [5000.0, 5000.0])[0]
        capsys.readouterr()
        assert cli_main(
            [
                "explain-certain", "--data", str(data), "--q", "5000", "5000",
                "--an", member,
            ]
        ) == 1
