"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def make_uncertain_dataset(
    rng: np.random.Generator,
    n: int,
    dims: int = 2,
    max_samples: int = 3,
    domain: float = 10.0,
) -> UncertainDataset:
    """A small random uncertain dataset with equal-probability samples."""
    objects = [
        UncertainObject(
            i,
            rng.uniform(0.0, domain, size=(int(rng.integers(1, max_samples + 1)), dims)),
        )
        for i in range(n)
    ]
    return UncertainDataset(objects)


@pytest.fixture
def tiny_uncertain(rng) -> UncertainDataset:
    """Six 2-D uncertain objects — small enough for possible-world checks."""
    return make_uncertain_dataset(rng, n=6)


@pytest.fixture
def small_certain(rng) -> CertainDataset:
    """Twelve 2-D certain points."""
    return CertainDataset(rng.uniform(0.0, 10.0, size=(12, 2)))


@pytest.fixture
def paper_style_example() -> UncertainDataset:
    """A hand-laid-out 2-D dataset in the spirit of the running example
    (Fig. 2): objects with 2-4 equal-probability samples around distinct
    locations, one of which ("c") is a non-answer for the query below."""
    return UncertainDataset(
        [
            UncertainObject("a", [[8.2, 1.0], [8.6, 1.4]]),
            UncertainObject("b", [[6.5, 5.2], [6.4, 5.4], [9.5, 1.0]]),
            UncertainObject("c", [[6.0, 6.0], [6.3, 5.7], [5.8, 6.2], [6.1, 5.9]]),
            UncertainObject("d", [[5.4, 5.5], [5.6, 5.6]]),
            UncertainObject("e", [[5.6, 6.5], [5.7, 6.3]]),
            UncertainObject("f", [[6.9, 6.1], [6.8, 6.3], [1.0, 1.0]]),
            UncertainObject("g", [[1.2, 8.0], [1.6, 8.5]]),
            UncertainObject("h", [[6.4, 6.7], [6.5, 6.6]]),
            UncertainObject("i", [[5.9, 5.6], [6.0, 5.8]]),
        ]
    )


@pytest.fixture
def paper_style_query() -> np.ndarray:
    return np.array([5.0, 5.0])
