"""Unit tests for the exception hierarchy and misc plumbing."""

import subprocess
import sys

import pytest

from repro.exceptions import (
    DimensionalityError,
    EmptyDatasetError,
    IndexError_,
    InvalidProbabilityError,
    NotANonAnswerError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            DimensionalityError(2, 3),
            EmptyDatasetError("empty"),
            IndexError_("corrupt"),
            InvalidProbabilityError("bad"),
            NotANonAnswerError("answer"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_dimensionality_message(self):
        exc = DimensionalityError(2, 3, what="point")
        assert "point" in str(exc)
        assert exc.expected == 2
        assert exc.actual == 3

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise NotANonAnswerError("x")


class TestModuleEntryPoint:
    def test_python_dash_m_repro_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "reverse skyline" in proc.stdout.lower()

    def test_python_dash_m_repro_requires_command(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode != 0


class TestVersionMetadata:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
