"""The repo lints itself clean — the CI gate, as a test.

``python -m repro lint src tests`` (plus examples and benchmarks) must
exit 0 against the repo's own ``pyproject.toml``: every invariant the
linter encodes is one the codebase actually upholds, and every
``# repro: ignore`` that survives is still load-bearing.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[1]


def test_repo_lints_clean():
    findings, files = lint_paths(
        [str(REPO / "src"), str(REPO / "tests")],
        config_path=REPO / "pyproject.toml",
    )
    assert files > 100
    assert findings == [], "\n".join(f.render() for f in findings)


def test_examples_and_benchmarks_lint_clean():
    findings, files = lint_paths(
        [str(REPO / "examples"), str(REPO / "benchmarks")],
        config_path=REPO / "pyproject.toml",
    )
    assert files > 0
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_self_run_is_clean_json():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src", "tests", "--json"],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["summary"]["findings"] == 0
    assert payload["summary"]["files"] > 100
