"""Unit tests for the Naive-I / Naive-II baselines and the brute-force oracle."""

import numpy as np
import pytest

from repro.core.cp import compute_causality
from repro.core.cr import compute_causality_certain
from repro.core.naive import brute_force_causality, naive_i, naive_ii
from repro.exceptions import NotANonAnswerError
from repro.prsq.query import prsq_non_answers
from repro.skyline.reverse import reverse_skyline
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject
from tests.conftest import make_uncertain_dataset


class TestNaiveI:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_output_as_cp(self, seed):
        rng = np.random.default_rng(seed)
        ds = make_uncertain_dataset(rng, n=7, dims=2)
        q = rng.uniform(0, 10, size=2)
        for an in prsq_non_answers(ds, q, 0.5, use_index=False):
            assert naive_i(ds, an, q, 0.5).same_causality(
                compute_causality(ds, an, q, 0.5)
            )

    def test_examines_at_least_as_many_subsets(self, rng):
        ds = make_uncertain_dataset(rng, n=9, dims=2)
        q = rng.uniform(0, 10, size=2)
        nas = prsq_non_answers(ds, q, 0.5, use_index=False)
        if not nas:
            pytest.skip("no non-answers")
        an = nas[0]
        cp = compute_causality(ds, an, q, 0.5)
        nv = naive_i(ds, an, q, 0.5)
        assert nv.stats.subsets_examined >= cp.stats.subsets_examined

    def test_same_io_as_cp(self, rng):
        """Paper Fig. 6: CP and Naive-I have identical I/O (same filter)."""
        from repro.core.candidates import find_candidate_causes

        ds = make_uncertain_dataset(rng, n=25, dims=2)
        q = rng.uniform(0, 10, size=2)
        # Bound the candidate count so Naive-I's exponential refinement
        # stays cheap; the I/O identity is a filter-step property anyway.
        nas = [
            an
            for an in prsq_non_answers(ds, q, 0.5, use_index=False)
            if len(find_candidate_causes(ds, an, q)) <= 8
        ]
        if not nas:
            pytest.skip("no bounded non-answers")
        an = nas[0]
        cp = compute_causality(ds, an, q, 0.5)
        nv = naive_i(ds, an, q, 0.5)
        assert nv.stats.node_accesses == cp.stats.node_accesses


class TestNaiveII:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_output_as_cr(self, seed):
        rng = np.random.default_rng(seed + 30)
        ds = CertainDataset(rng.uniform(0, 10, size=(12, 2)))
        q = rng.uniform(0, 10, size=2)
        members = set(reverse_skyline(ds, q))
        for oid in ds.ids():
            if oid in members:
                continue
            assert naive_ii(ds, oid, q).same_causality(
                compute_causality_certain(ds, oid, q)
            )

    def test_rejects_reverse_skyline_member(self):
        ds = CertainDataset([[4.0, 4.0], [9.0, 9.0]], ids=["m", "o"])
        with pytest.raises(NotANonAnswerError):
            naive_ii(ds, "m", [5.0, 5.0])

    def test_candidate_cap(self):
        points = [[4.0, 4.0]] + [
            [4.0 + 0.01 * (i + 1), 4.0 + 0.01 * (i + 1)] for i in range(30)
        ]
        ds = CertainDataset(points)
        with pytest.raises(ValueError):
            naive_ii(ds, 0, [5.0, 5.0], max_candidates=10)

    def test_subset_count_exponential(self):
        # 4 dominators -> each verification enumerates subsets of the other 3.
        ds = CertainDataset(
            [[4.0, 4.0], [4.2, 4.2], [4.3, 4.3], [4.4, 4.4], [4.5, 4.5]],
            ids=["an", "c1", "c2", "c3", "c4"],
        )
        res = naive_ii(ds, "an", [5.0, 5.0])
        assert len(res) == 4
        # per candidate: all subsets of the 3 others up to the full set.
        assert res.stats.subsets_examined == 4 * 2**3


class TestBruteForce:
    def test_cap_enforced(self, rng):
        ds = make_uncertain_dataset(rng, n=16, dims=2)
        with pytest.raises(ValueError):
            brute_force_causality(ds, ds.ids()[0], [5.0, 5.0], 0.5, max_objects=8)

    def test_rejects_answer(self):
        ds = UncertainDataset(
            [
                UncertainObject("u", [[2.0, 2.0]]),
                UncertainObject("v", [[9.0, 9.0]]),
            ]
        )
        with pytest.raises(NotANonAnswerError):
            brute_force_causality(ds, "u", [3.0, 3.0], 0.5)

    def test_counterfactual_detected(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("cf", [[2.4, 2.4]]),
            ]
        )
        res = brute_force_causality(ds, "an", [3.0, 3.0], 0.5)
        assert res.cause_ids() == ["cf"]
        assert res.responsibility("cf") == 1.0
