"""Unit tests for the filter step (Lemmas 1 and 2)."""

import numpy as np
import pytest

from repro.core.candidates import (
    can_influence,
    filter_rectangles,
    find_candidate_causes,
)
from repro.geometry.dominance import dominance_rectangle
from repro.prsq.probability import dominance_probability_vector
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from tests.conftest import make_uncertain_dataset


class TestFilterRectangles:
    def test_one_rectangle_per_sample(self):
        an = UncertainObject("an", [[1, 1], [2, 2], [3, 3]])
        rects = filter_rectangles(an, [5.0, 5.0])
        assert len(rects) == 3
        for i, rect in enumerate(rects):
            assert rect == dominance_rectangle(an.samples[i], [5.0, 5.0])


class TestCanInfluence:
    def test_equivalent_to_nonzero_eq3_vector(self, rng):
        ds = make_uncertain_dataset(rng, n=10, dims=2)
        q = rng.uniform(0, 10, size=2)
        an = ds.get(ds.ids()[0])
        for obj in ds.others(an.oid):
            vec = dominance_probability_vector(obj, an, q)
            assert can_influence(obj, an, q) == bool(vec.any())


class TestFindCandidateCauses:
    def test_index_matches_linear_scan(self, rng):
        ds = make_uncertain_dataset(rng, n=30, dims=2)
        q = rng.uniform(0, 10, size=2)
        for oid in ds.ids()[:5]:
            with_index = find_candidate_causes(ds, oid, q, use_index=True)
            without = find_candidate_causes(ds, oid, q, use_index=False)
            assert with_index == without

    def test_excludes_the_non_answer_itself(self, rng):
        ds = make_uncertain_dataset(rng, n=15, dims=2)
        q = rng.uniform(0, 10, size=2)
        for oid in ds.ids():
            assert oid not in find_candidate_causes(ds, oid, q)

    def test_lemma1_completeness(self, rng):
        """Objects outside the candidate set have all-zero Eq. (3) vectors."""
        ds = make_uncertain_dataset(rng, n=20, dims=2)
        q = rng.uniform(0, 10, size=2)
        an_oid = ds.ids()[0]
        an = ds.get(an_oid)
        candidates = set(find_candidate_causes(ds, an_oid, q))
        for obj in ds.others(an_oid):
            vec = dominance_probability_vector(obj, an, q)
            if obj.oid in candidates:
                assert vec.any()
            else:
                assert not vec.any()

    def test_custom_windows_respected(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[5.0, 5.0]]),
                UncertainObject("near", [[5.2, 5.2]]),
                UncertainObject("far", [[9.5, 9.5]]),
            ]
        )
        q = [6.0, 6.0]
        default = find_candidate_causes(ds, "an", q)
        assert default == ["near"]
        # A huge window brings nothing new: the exact confirmation still
        # rejects "far" (its Eq. (3) vector is zero).
        from repro.geometry.rectangle import Rect

        wide = [Rect([0.0, 0.0], [10.0, 10.0])]
        assert find_candidate_causes(ds, "an", q, windows=wide) == ["near"]

    def test_running_example_shape(self, paper_style_example, paper_style_query):
        """In the Fig.-2-style layout, nearby objects (not the remote g or
        the opposite-quadrant a) are the candidates of c."""
        candidates = find_candidate_causes(
            paper_style_example, "c", paper_style_query
        )
        assert "g" not in candidates
        assert len(candidates) >= 3
