"""Bit-compatibility of the tensorized Eq. (2)/(3) kernels.

The engine may pick the tensor path or the scalar reference per session,
so the two must agree to the last bit — on the Eq. (3) matrix entries
(vs. ``sample_dominance_probability``), on the Eq. (2) reduction
(vs. ``probability_from_matrix``), on ragged sample counts (exercising the
padding mask), and on the restricted ``exclude``/``keep`` evaluations CP
and CR lean on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import kernels
from repro.prsq.probability import (
    dominance_probability_matrix,
    dominance_probability_vector,
    probability_from_matrix,
    relevant_indices,
    reverse_skyline_probability,
    sample_dominance_probability,
)
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from repro.uncertain.tensor import DatasetTensor

coordinate = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coordinate, coordinate)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _weighted_object(oid, rows):
    """An object with non-uniform probabilities derived from its size."""
    weights = np.arange(1.0, len(rows) + 1.0)
    return UncertainObject(oid, np.array(rows), weights / weights.sum())


def ragged_dataset_strategy(max_objects=6, max_samples=4):
    object_strategy = st.lists(point2d, min_size=1, max_size=max_samples)
    return st.lists(object_strategy, min_size=2, max_size=max_objects).map(
        lambda rows: UncertainDataset(
            [_weighted_object(i, samples) for i, samples in enumerate(rows)]
        )
    )


class TestDatasetTensor:
    def test_layout_and_mask(self):
        ds = UncertainDataset(
            [
                UncertainObject("a", [[1.0, 2.0]]),
                UncertainObject("b", [[3.0, 4.0], [5.0, 6.0], [7.0, 8.0]]),
            ]
        )
        t = ds.tensor
        assert t.samples.shape == (2, 3, 2)
        assert t.mask.tolist() == [[True, False, False], [True, True, True]]
        assert t.probabilities[0].tolist() == [1.0, 0.0, 0.0]
        np.testing.assert_array_equal(t.samples[1], ds.get("b").samples)
        assert t.index_of == {"a": 0, "b": 1}
        assert ds.tensor is t  # cached
        assert not t.samples.flags.writeable

    def test_rows_preserve_order(self):
        ds = UncertainDataset(
            [UncertainObject(i, [[float(i), 0.0]]) for i in range(5)]
        )
        samples, probs, mask = ds.tensor.rows([3, 1, 4])
        assert [row[0][0] for row in samples] == [3.0, 1.0, 4.0]
        assert probs.shape == (3, 1) and mask.all()

    def test_pickle_round_trip_stays_frozen(self):
        import pickle

        ds = UncertainDataset(
            [
                UncertainObject("a", [[1.0, 2.0]]),
                UncertainObject("b", [[3.0, 4.0], [5.0, 6.0]]),
            ]
        )
        clone = pickle.loads(pickle.dumps(ds.tensor))
        np.testing.assert_array_equal(clone.samples, ds.tensor.samples)
        assert clone.index_of == ds.tensor.index_of
        # a worker's unpickled copy keeps the read-only contract
        for array in (clone.samples, clone.probabilities, clone.mask):
            assert not array.flags.writeable
        with pytest.raises(ValueError):
            clone.samples[0, 0, 0] = 9.0

    def test_standalone_construction_matches_dataset(self):
        objects = [UncertainObject(i, [[float(i), 1.0]]) for i in range(3)]
        ds = UncertainDataset(objects)
        standalone = DatasetTensor(objects)
        np.testing.assert_array_equal(standalone.samples, ds.tensor.samples)


class TestEq3Parity:
    @SLOW
    @given(ds=ragged_dataset_strategy(), q=point2d)
    def test_matrix_entries_bitwise_equal_scalar(self, ds, q):
        tensor = ds.tensor
        for center in ds:
            others = [i for i, obj in enumerate(ds) if obj.oid != center.oid]
            samples, probs, mask = tensor.rows(others)
            fast = kernels.eq3_dominance_tensor(
                center.samples, samples, probs, mask, q, use_numpy=True
            )
            slow = kernels.eq3_dominance_tensor(
                center.samples, samples, probs, mask, q, use_numpy=False
            )
            np.testing.assert_array_equal(fast, slow)
            objects = ds.objects()
            for j, i in enumerate(others):
                reference = dominance_probability_vector(objects[i], center, q)
                assert fast[j].tobytes() == reference.tobytes()

    @SLOW
    @given(ds=ragged_dataset_strategy(), q=point2d)
    def test_entry_matches_sample_dominance_probability(self, ds, q):
        tensor = ds.tensor
        center = ds.objects()[0]
        others = list(range(1, len(ds)))
        samples, probs, mask = tensor.rows(others)
        eq3 = kernels.eq3_dominance_tensor(
            center.samples, samples, probs, mask, q, use_numpy=True
        )
        objects = ds.objects()
        for j, i in enumerate(others):
            for s in range(center.num_samples):
                reference = sample_dominance_probability(
                    objects[i], center.samples[s], q
                )
                assert eq3[j, s].hex() == float(reference).hex()

    def test_chunking_invariant(self, monkeypatch):
        rng = np.random.default_rng(3)
        ds = UncertainDataset(
            [
                UncertainObject(i, rng.uniform(0, 10, size=(4, 2)))
                for i in range(40)
            ]
        )
        tensor = ds.tensor
        center = ds.objects()[0]
        samples, probs, mask = tensor.rows(list(range(1, 40)))
        whole = kernels.eq3_dominance_tensor(
            center.samples, samples, probs, mask, [5.0, 5.0]
        )
        monkeypatch.setattr(kernels, "_EQ3_SCRATCH_ELEMENTS", 64)
        chunked = kernels.eq3_dominance_tensor(
            center.samples, samples, probs, mask, [5.0, 5.0]
        )
        np.testing.assert_array_equal(whole, chunked)


class TestEq2Parity:
    @SLOW
    @given(ds=ragged_dataset_strategy(), q=point2d)
    def test_full_probability_bitwise_equal(self, ds, q):
        for oid in ds.ids():
            values = {
                reverse_skyline_probability(
                    ds, oid, q, use_index=ui, use_numpy=un
                ).hex()
                for ui in (True, False)
                for un in (True, False)
            }
            assert len(values) == 1

    @SLOW
    @given(ds=ragged_dataset_strategy(), q=point2d, data=st.data())
    def test_exclude_path_bitwise_equal(self, ds, q, data):
        oid = ds.ids()[0]
        removable = [o for o in ds.ids() if o != oid]
        excluded = data.draw(st.sets(st.sampled_from(removable)))
        fast = reverse_skyline_probability(
            ds, oid, q, exclude=excluded, use_numpy=True
        )
        slow = reverse_skyline_probability(
            ds, oid, q, exclude=excluded, use_numpy=False
        )
        assert fast.hex() == slow.hex()

    @SLOW
    @given(ds=ragged_dataset_strategy(), q=point2d, data=st.data())
    def test_keep_path_matches_probability_from_matrix(self, ds, q, data):
        center = ds.objects()[0]
        others = list(range(1, len(ds)))
        matrix = dominance_probability_matrix(
            center, (ds.objects()[i] for i in others), q
        )
        tensor = ds.tensor
        samples, probs, mask = tensor.rows(others)
        eq3 = kernels.eq3_dominance_tensor(
            center.samples, samples, probs, mask, q, use_numpy=True
        )
        keep = sorted(data.draw(st.sets(st.sampled_from(others))))
        reference = probability_from_matrix(
            center, matrix, keep=[tensor.ids[i] for i in keep]
        )
        rows = [others.index(i) for i in keep]
        assert kernels.eq2_probability(
            center.probabilities, eq3, rows=rows
        ).hex() == reference.hex()


class TestInfluenceMaskParity:
    @SLOW
    @given(ds=ragged_dataset_strategy(), q=point2d)
    def test_numpy_matches_python(self, ds, q):
        tensor = ds.tensor
        center = ds.objects()[0]
        others = list(range(1, len(ds)))
        samples, _, mask = tensor.rows(others)
        fast = kernels.influence_mask(
            center.samples, samples, mask, q, use_numpy=True
        )
        slow = kernels.influence_mask(
            center.samples, samples, mask, q, use_numpy=False
        )
        np.testing.assert_array_equal(fast, slow)
        # Non-zero Eq. (3) vector <=> influencing (Lemma 1).
        eq3 = kernels.eq3_dominance_tensor(
            center.samples, samples, tensor.rows(others)[1], mask, q
        )
        np.testing.assert_array_equal(fast, eq3.any(axis=1))


class TestRelevantIndices:
    def test_sorted_and_excludes(self):
        rng = np.random.default_rng(11)
        ds = UncertainDataset(
            [
                UncertainObject(i, rng.uniform(0, 10, size=(2, 2)))
                for i in range(20)
            ]
        )
        q = [5.0, 5.0]
        indices = relevant_indices(ds, 3, q, use_index=True)
        assert indices == sorted(indices)
        assert 3 not in indices
        pruned = set(indices)
        full = set(relevant_indices(ds, 3, q, use_index=False))
        assert pruned <= full
        without = relevant_indices(ds, 3, q, use_index=True, exclude=[0, 7])
        assert pruned - {0, 7} == set(without)


class TestMonteCarloKernelParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_world_mask_matches_scalar_loop(self, seed):
        from repro.prsq.montecarlo import sample_reverse_skyline_probability
        from tests.conftest import make_uncertain_dataset

        rng = np.random.default_rng(seed)
        ds = make_uncertain_dataset(rng, n=8, dims=2)
        q = rng.uniform(0, 10, size=2)
        oid = ds.ids()[0]
        fast = sample_reverse_skyline_probability(
            ds, oid, q, worlds=400, seed=seed, use_numpy=True
        )
        slow = sample_reverse_skyline_probability(
            ds, oid, q, worlds=400, seed=seed, use_numpy=False
        )
        assert fast.value == slow.value
        assert fast.worlds == slow.worlds
