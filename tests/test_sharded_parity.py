"""Sharded parity suite: every query family bit-identical to k=1.

The sharding tentpole's soundness contract, property-tested the same way
``test_updates_stateful.py`` proves update soundness: Hypothesis draws a
shard count k in {2, 3, 8}, a kernel path, and (for the churn tests) an
arbitrary interleaving of ``DatasetDelta`` mutations and queries, then
asserts that a sharded session returns **bit-identical results** to an
unsharded session over the same contents — probabilities compared via
``float.hex``, id lists and causes dicts compared exactly.

Parity is defined over *results*, never ``node_accesses``: k shard trees
have k roots and different heights, so the I/O counts legitimately
differ while every answer bit must not.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    CausalityCertainSpec,
    CausalitySpec,
    DatasetDelta,
    KSkybandCausalitySpec,
    PRSQSpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    Session,
)
from repro.uncertain import CertainDataset, UncertainDataset, UncertainObject

Q = (5.0, 5.0)
ALPHA = 0.5
SHARD_COUNTS = st.sampled_from([2, 3, 8])

OPS = st.lists(
    st.sampled_from(["insert", "delete", "update", "query"]),
    max_size=10,
)


def _uncertain_object(oid, rng):
    return UncertainObject(
        oid, rng.uniform(0.0, 10.0, size=(int(rng.integers(1, 4)), 2))
    )


def _certain_object(oid, rng):
    return UncertainObject.certain(oid, rng.uniform(0.0, 10.0, size=2))


def _uncertain_dataset(rng, n=10):
    return UncertainDataset([_uncertain_object(f"o{i}", rng) for i in range(n)])


def _certain_dataset(rng, n=12):
    return CertainDataset(
        rng.uniform(0.0, 10.0, size=(n, 2)), ids=[f"c{i}" for i in range(n)]
    )


def _bits(probabilities):
    return {oid: value.hex() for oid, value in probabilities.items()}


def _churn(sessions, op_kinds, seed, make_object, min_objects=3):
    """Apply one drawn interleaving to every session in *sessions*.

    Each session gets its own identically-seeded rng so random choices
    (which id to delete, the replacement samples) match bit-for-bit —
    the sessions stay element-wise identical while their partitions (and
    rebalance histories) diverge freely.
    """
    for session in sessions:
        rng = np.random.default_rng(seed)
        next_id = 1000
        for kind in op_kinds:
            ids = session.dataset.ids()
            if kind == "insert":
                session.apply(
                    DatasetDelta.insertion(make_object(f"n{next_id}", rng))
                )
                next_id += 1
            elif kind == "delete":
                if len(ids) <= min_objects:
                    continue
                oid = ids[int(rng.integers(len(ids)))]
                session.apply(DatasetDelta.deletion(oid))
            elif kind == "update":
                oid = ids[int(rng.integers(len(ids)))]
                session.apply(DatasetDelta.replacement(make_object(oid, rng)))
            else:  # query: populate the cache under the current fingerprint
                session.query(PRSQSpec(q=Q, alpha=ALPHA, want="probabilities"))


def _assert_uncertain_parity(plain, sharded):
    spec = PRSQSpec(q=Q, alpha=ALPHA, want="probabilities")
    ref = plain.query(spec).value.probabilities
    assert _bits(sharded.query(spec).value.probabilities) == _bits(ref)
    for want in ("answers", "non_answers"):
        want_spec = PRSQSpec(q=Q, alpha=ALPHA, want=want)
        assert (
            sharded.query(want_spec).value.ids == plain.query(want_spec).value.ids
        )
    non_answers = [oid for oid, pr in ref.items() if pr < ALPHA]
    if non_answers:
        causality = CausalitySpec(an=non_answers[0], q=Q, alpha=ALPHA)
        assert (
            sharded.query(causality).value.causes
            == plain.query(causality).value.causes
        )


def _assert_certain_parity(plain, sharded):
    skyline_spec = ReverseSkylineSpec(q=Q)
    skyline = plain.query(skyline_spec).value.ids
    assert sharded.query(skyline_spec).value.ids == skyline
    band_spec = ReverseKSkybandSpec(q=Q, k=2)
    assert (
        sharded.query(band_spec).value.ids == plain.query(band_spec).value.ids
    )
    topk_spec = ReverseTopKSpec(
        q=(4.0, 4.5), k=3, weights=((1.0, 0.3), (0.2, 1.0), (0.7, 0.7))
    )
    assert (
        sharded.query(topk_spec).value.user_ids
        == plain.query(topk_spec).value.user_ids
    )
    non_answers = [oid for oid in plain.dataset.ids() if oid not in skyline]
    if non_answers:
        an = non_answers[0]
        cr = CausalityCertainSpec(an=an, q=Q)
        assert sharded.query(cr).value.causes == plain.query(cr).value.causes
        band_cr = KSkybandCausalitySpec(an=an, q=Q, k=1)
        assert (
            sharded.query(band_cr).value.causes
            == plain.query(band_cr).value.causes
        )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    shards=SHARD_COUNTS,
    use_numpy=st.booleans(),
)
def test_uncertain_families_bit_identical(seed, shards, use_numpy):
    rng = np.random.default_rng(seed)
    dataset = _uncertain_dataset(rng)
    plain = Session(UncertainDataset(dataset.objects()), use_numpy=use_numpy)
    sharded = Session(
        UncertainDataset(dataset.objects()),
        use_numpy=use_numpy,
        shards=shards,
    )
    assert sharded.fingerprint == plain.fingerprint
    _assert_uncertain_parity(plain, sharded)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    shards=SHARD_COUNTS,
    use_numpy=st.booleans(),
)
def test_certain_families_bit_identical(seed, shards, use_numpy):
    rng = np.random.default_rng(seed)
    dataset = _certain_dataset(rng)
    plain = Session(
        CertainDataset(dataset.points.copy(), ids=dataset.ids()),
        use_numpy=use_numpy,
    )
    sharded = Session(
        CertainDataset(dataset.points.copy(), ids=dataset.ids()),
        use_numpy=use_numpy,
        shards=shards,
    )
    assert sharded.fingerprint == plain.fingerprint
    _assert_certain_parity(plain, sharded)


@settings(max_examples=20, deadline=None)
@given(
    op_kinds=OPS,
    seed=st.integers(min_value=0, max_value=2**16),
    shards=SHARD_COUNTS,
    use_numpy=st.booleans(),
)
def test_uncertain_parity_survives_churn(op_kinds, seed, shards, use_numpy):
    rng = np.random.default_rng(seed)
    dataset = _uncertain_dataset(rng, n=6)
    plain = Session(UncertainDataset(dataset.objects()), use_numpy=use_numpy)
    sharded = Session(
        UncertainDataset(dataset.objects()),
        use_numpy=use_numpy,
        shards=shards,
    )
    _churn([plain, sharded], op_kinds, seed, _uncertain_object)
    # routed deltas + rebalances preserved contents and the incremental
    # fingerprint (shard digests roll up to the same content digest)
    assert sharded.fingerprint == plain.fingerprint
    assert sorted(sharded.dataset.ids(), key=repr) == sorted(
        plain.dataset.ids(), key=repr
    )
    _assert_uncertain_parity(plain, sharded)


@settings(max_examples=20, deadline=None)
@given(
    op_kinds=OPS,
    seed=st.integers(min_value=0, max_value=2**16),
    shards=SHARD_COUNTS,
    use_numpy=st.booleans(),
)
def test_certain_parity_survives_churn(op_kinds, seed, shards, use_numpy):
    rng = np.random.default_rng(seed)
    dataset = _certain_dataset(rng, n=8)
    plain = Session(
        CertainDataset(dataset.points.copy(), ids=dataset.ids()),
        use_numpy=use_numpy,
    )
    sharded = Session(
        CertainDataset(dataset.points.copy(), ids=dataset.ids()),
        use_numpy=use_numpy,
        shards=shards,
    )

    def churn_certain(session):
        rng2 = np.random.default_rng(seed)
        next_id = 1000
        for kind in op_kinds:
            ids = session.dataset.ids()
            if kind == "insert":
                session.apply(
                    DatasetDelta.insertion(
                        _certain_object(f"n{next_id}", rng2)
                    )
                )
                next_id += 1
            elif kind == "delete":
                if len(ids) <= 3:
                    continue
                session.apply(
                    DatasetDelta.deletion(ids[int(rng2.integers(len(ids)))])
                )
            elif kind == "update":
                oid = ids[int(rng2.integers(len(ids)))]
                session.apply(
                    DatasetDelta.replacement(_certain_object(oid, rng2))
                )
            else:
                session.query(ReverseSkylineSpec(q=Q))

    churn_certain(plain)
    churn_certain(sharded)
    assert sharded.fingerprint == plain.fingerprint
    _assert_certain_parity(plain, sharded)
