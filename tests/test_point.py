"""Unit tests for repro.geometry.point."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.geometry.point import (
    as_point,
    as_point_matrix,
    euclidean,
    l_infinity,
    points_equal,
)


class TestAsPoint:
    def test_list_coerced_to_float64(self):
        p = as_point([1, 2, 3])
        assert p.dtype == np.float64
        assert p.tolist() == [1.0, 2.0, 3.0]

    def test_tuple_accepted(self):
        assert as_point((0.5, 1.5)).shape == (2,)

    def test_ndarray_passthrough_values(self):
        src = np.array([1.0, 2.0])
        assert np.array_equal(as_point(src), src)

    def test_dims_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            as_point([1.0, 2.0], dims=3)

    def test_dims_match_ok(self):
        assert as_point([1.0, 2.0], dims=2).shape == (2,)

    def test_matrix_input_rejected(self):
        with pytest.raises(DimensionalityError):
            as_point([[1.0, 2.0], [3.0, 4.0]])


class TestAsPointMatrix:
    def test_basic_shape(self):
        m = as_point_matrix([[1, 2], [3, 4], [5, 6]])
        assert m.shape == (3, 2)

    def test_single_point_promoted(self):
        m = as_point_matrix([[1, 2]])
        assert m.shape == (1, 2)

    def test_dims_enforced(self):
        with pytest.raises(DimensionalityError):
            as_point_matrix([[1, 2, 3]], dims=2)

    def test_empty_with_dims(self):
        m = as_point_matrix([], dims=4)
        assert m.shape == (0, 4)


class TestPointsEqual:
    def test_exact_equality(self):
        assert points_equal([1.0, 2.0], (1.0, 2.0))

    def test_inequality(self):
        assert not points_equal([1.0, 2.0], [1.0, 2.000001])

    def test_tolerance(self):
        assert points_equal([1.0, 2.0], [1.0, 2.000001], tol=1e-5)

    def test_shape_mismatch_is_unequal(self):
        assert not points_equal([1.0], [1.0, 2.0])


class TestDistances:
    def test_l_infinity(self):
        assert l_infinity([0.0, 0.0], [3.0, -4.0]) == 4.0

    def test_l_infinity_zero(self):
        assert l_infinity([1.0, 1.0], [1.0, 1.0]) == 0.0

    def test_l_infinity_dim_mismatch(self):
        with pytest.raises(DimensionalityError):
            l_infinity([1.0], [1.0, 2.0])

    def test_euclidean(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_euclidean_dim_mismatch(self):
        with pytest.raises(DimensionalityError):
            euclidean([1.0, 2.0, 3.0], [1.0, 2.0])
