"""Packed R-tree snapshot: traversal parity, accounting, and the handoff.

The engine's kernel switch may route any filter-phase traversal through
either the pointer :class:`~repro.index.rtree.RTree` or the packed
:class:`~repro.index.packed.PackedRTree` snapshot, so the two must be
indistinguishable: identical hit sets (identical *lists* for the
canonically ordered ``range_search_any`` family) and identical
``AccessStats`` counts — i.e. the packed level frontier visits exactly as
many nodes per query as the pointer traversal, across random trees,
windows, and update interleavings.  Hypothesis drives the parity suite
with a tiny fanout so multi-level frontiers are the norm, not the
exception.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.reporting import write_json_report
from repro.engine.executor import _dataset_payload, _restore_dataset
from repro.engine.session import Session
from repro.engine.spec import PRSQSpec
from repro.geometry.rectangle import Rect
from repro.index.bulk import bulk_load
from repro.index.packed import PackedRTree
from repro.index.rtree import RTree
from repro.index.stats import AccessStats
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject

from tests.conftest import make_uncertain_dataset

# 2 corners * 2 dims * 8 bytes + 8-byte pointer = 40 bytes/entry -> fanout 4
TINY_PAGE = 160


def _rect(rng, extent=10.0):
    lo = rng.uniform(0.0, 100.0, size=2)
    return Rect(lo, lo + rng.uniform(0.0, extent, size=2))


def _windows(rng, count):
    return [_rect(rng, extent=40.0) for _ in range(count)]


def _measured(index, call):
    stats = index.stats
    with stats.measure() as snapshot:
        result = call(index)
    return result, (
        snapshot.node_accesses,
        snapshot.leaf_accesses,
        snapshot.queries,
    )


def assert_query_parity(tree: RTree, packed: PackedRTree, rng) -> None:
    """Every kernel agrees with its pointer reference, hits and counts."""
    window = _rect(rng, extent=40.0)
    p_hits, p_stats = _measured(tree, lambda t: t.range_search(window))
    k_hits, k_stats = _measured(packed, lambda p: p.range_search(window))
    assert sorted(p_hits, key=repr) == sorted(k_hits, key=repr)
    assert p_stats == k_stats

    for count in (0, 1, 4):
        windows = _windows(rng, count)
        p_hits, p_stats = _measured(tree, lambda t: t.range_search_any(windows))
        k_hits, k_stats = _measured(
            packed, lambda p: p.range_search_any(windows)
        )
        assert p_hits == k_hits  # canonical order is part of the contract
        assert p_stats == k_stats

    windows = _windows(rng, 5)
    p_res, p_stats = _measured(tree, lambda t: t.range_search_many(windows))
    k_res, k_stats = _measured(packed, lambda p: p.range_search_many(windows))
    assert [sorted(x, key=repr) for x in p_res] == [
        sorted(x, key=repr) for x in k_res
    ]
    assert p_stats == k_stats

    # Empty groups interleaved AND trailing: a trailing empty group once
    # truncated the final non-empty group's reduceat segment (regression).
    groups = [_windows(rng, 3), [], _windows(rng, 1), _windows(rng, 6), []]
    p_res, p_stats = _measured(
        tree, lambda t: t.range_search_any_grouped(groups)
    )
    k_res, k_stats = _measured(
        packed, lambda p: p.range_search_any_grouped(groups)
    )
    assert p_res == k_res
    assert p_stats == k_stats


class TestTraversalParity:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=0, max_value=60),
        bulk=st.booleans(),
    )
    def test_parity_on_random_trees(self, seed, n, bulk):
        rng = np.random.default_rng(seed)
        items = [(_rect(rng), i) for i in range(n)]
        if bulk:
            tree = bulk_load(items, dims=2, page_size=TINY_PAGE)
        else:
            tree = RTree(dims=2, page_size=TINY_PAGE)
            for rect, payload in items:
                tree.insert(rect, payload)
        packed = tree.freeze(stats=AccessStats())
        assert len(packed) == len(tree)
        assert_query_parity(tree, packed, rng)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        op_kinds=st.lists(
            st.sampled_from(["insert", "delete", "insert"]), max_size=20
        ),
    )
    def test_parity_across_update_interleavings(self, seed, op_kinds):
        """Re-freezing after every churn step keeps counts identical."""
        rng = np.random.default_rng(seed)
        live = [(_rect(rng), i) for i in range(12)]
        tree = bulk_load(list(live), dims=2, page_size=TINY_PAGE)
        next_payload = len(live)
        for kind in op_kinds:
            if kind == "insert" or not live:
                entry = (_rect(rng), next_payload)
                next_payload += 1
                tree.insert(*entry)
                live.append(entry)
            else:
                victim = live.pop(int(rng.integers(len(live))))
                assert tree.delete(*victim)
            packed = tree.freeze(stats=AccessStats())
            assert_query_parity(tree, packed, rng)

    def test_snapshot_is_immutable_and_picklable(self, rng):
        import pickle

        tree = bulk_load(
            [(_rect(rng), i) for i in range(30)], dims=2, page_size=TINY_PAGE
        )
        packed = tree.freeze()
        with pytest.raises(ValueError):
            packed.node_lo[0, 0] = 1.0
        clone = pickle.loads(pickle.dumps(packed))
        assert clone.stats is not packed.stats  # counters never shipped
        # the worker's copy keeps the read-only contract: unpickling
        # must re-freeze what pickle restores writable
        with pytest.raises(ValueError):
            clone.node_lo[0, 0] = 1.0
        with pytest.raises(ValueError):
            clone.entry_lo[0, 0] = 1.0
        window = _rect(rng, extent=40.0)
        assert clone.range_search(window) == packed.range_search(window)

    def test_freeze_shares_the_tree_stats_by_default(self, rng):
        tree = bulk_load(
            [(_rect(rng), i) for i in range(10)], dims=2, page_size=TINY_PAGE
        )
        packed = tree.freeze()
        before = tree.stats.node_accesses
        packed.range_search(_rect(rng))
        assert tree.stats.node_accesses > before


class TestCanonicalRangeSearchAny:
    def test_unique_repr_sorted_payloads(self, rng):
        tree = RTree(dims=2, page_size=TINY_PAGE)
        rects = [_rect(rng) for _ in range(25)]
        for rect in rects:
            tree.insert(rect, f"p{rects.index(rect)}")
        everything = [Rect([0.0, 0.0], [200.0, 200.0])] * 3
        got = tree.range_search_any(everything)
        assert got == sorted(set(got), key=repr)
        assert len(got) == 25


class TestDatasetIntegration:
    def test_spatial_index_selection_and_shared_stats(self, rng):
        dataset = make_uncertain_dataset(rng, n=40)
        assert dataset.spatial_index(False) is dataset.rtree
        assert dataset.spatial_index(True) is dataset.packed
        assert dataset.rtree.stats is dataset.access_stats
        assert dataset.packed.stats is dataset.access_stats

    def test_delta_invalidates_and_refreezes(self, rng):
        dataset = make_uncertain_dataset(rng, n=25)
        first = dataset.packed
        dataset.apply_delta(
            DatasetDelta.insertion(
                UncertainObject.certain("fresh", [5.0, 5.0])
            )
        )
        assert dataset._packed is None
        second = dataset.packed
        assert second is not first
        assert len(second) == len(dataset)
        window = Rect([0.0, 0.0], [10.0, 10.0])
        assert sorted(second.range_search(window), key=repr) == sorted(
            dataset.rtree.range_search(window), key=repr
        )

    def test_adopt_packed_rejects_mismatched_snapshot(self, rng):
        dataset = make_uncertain_dataset(rng, n=10)
        other = make_uncertain_dataset(rng, n=7)
        with pytest.raises(ValueError, match="does not match"):
            dataset.adopt_packed(other.rtree.freeze())


class TestWorkerHandoff:
    def test_payload_ships_packed_and_restore_skips_rebuild(self, rng):
        import pickle

        dataset = make_uncertain_dataset(rng, n=30)
        dataset.packed  # freeze parent-side
        payload = pickle.loads(pickle.dumps(_dataset_payload(dataset)))
        restored = _restore_dataset(payload)
        assert restored._packed is not None
        assert restored._rtree is None  # zero-rebuild: arrays adopted as-is
        assert restored._packed.stats is restored.access_stats
        window = Rect([0.0, 0.0], [6.0, 6.0])
        assert restored._packed.range_search_any([window]) == (
            dataset.packed.range_search_any([window])
        )

    def test_lazy_parent_ships_no_snapshot(self, rng):
        dataset = make_uncertain_dataset(rng, n=12)
        assert _dataset_payload(dataset)["packed"] is None

    def test_initargs_inherit_session_switches(self, rng):
        from repro.engine.executor import ParallelExecutor

        dataset = make_uncertain_dataset(rng, n=15)
        lazy = Session(dataset, build_index=False)
        assert dataset._rtree is None and dataset._packed is None
        payload, _pdf, kwargs, traced, plan = ParallelExecutor(
            workers=2
        )._initargs(lazy)
        assert kwargs["build_index"] is False
        assert traced is False
        assert plan is None  # no fault plan installed
        assert payload["packed"] is None  # laziness inherited end to end
        assert dataset._rtree is None  # _initargs itself stayed lazy

        eager = Session(make_uncertain_dataset(rng, n=15), use_numpy=True)
        payload, _pdf, kwargs, _traced, _plan = ParallelExecutor(
            workers=2
        )._initargs(eager)
        assert kwargs["build_index"] is True
        assert payload["packed"] is not None

        scalar = Session(make_uncertain_dataset(rng, n=15), use_numpy=False)
        scalar.dataset.packed  # frozen by someone else (e.g. shared dataset)
        payload, _pdf, kwargs, _traced, _plan = ParallelExecutor(
            workers=2
        )._initargs(scalar)
        assert payload["packed"] is None  # scalar workers never query it

    def test_numpy_session_on_adopted_snapshot_never_builds_pointer(self, rng):
        dataset = make_uncertain_dataset(rng, n=20)
        parent = Session(dataset, use_numpy=True)
        restored = _restore_dataset(_dataset_payload(dataset))
        worker = Session(restored, use_numpy=True, build_index=True)
        spec = PRSQSpec(q=(5.0, 5.0), alpha=0.5, want="probabilities")
        theirs = worker.query(spec).value.probabilities
        ours = parent.query(spec).value.probabilities
        assert {k: v.hex() for k, v in theirs.items()} == {
            k: v.hex() for k, v in ours.items()
        }
        assert restored._rtree is None  # the whole query ran off the arrays


class TestInsertManyBulkLoad:
    def test_empty_tree_takes_the_str_path(self, rng):
        items = [(_rect(rng), i) for i in range(200)]
        tree = RTree(dims=2, page_size=TINY_PAGE)
        tree.insert_many(items)
        tree.validate(allow_underfull=True)
        assert len(tree) == 200
        reference = bulk_load(items, dims=2, page_size=TINY_PAGE)
        # STR is deterministic: same packing as the bulk_load entry point.
        assert tree.height() == reference.height()
        window = _rect(rng, extent=40.0)
        assert sorted(tree.range_search(window)) == sorted(
            reference.range_search(window)
        )

    def test_non_empty_tree_keeps_incremental_path(self, rng):
        tree = RTree(dims=2, page_size=TINY_PAGE)
        tree.insert(_rect(rng), "seed")
        tree.insert_many([(_rect(rng), i) for i in range(50)])
        tree.validate()  # insertion-built trees satisfy strict min-fill
        assert len(tree) == 51

    def test_empty_batch_is_a_no_op(self):
        tree = RTree(dims=2, page_size=TINY_PAGE)
        tree.insert_many([])
        assert len(tree) == 0


class TestJsonReport:
    def test_write_json_report_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        rows = [{"speedup": 7.5, "objects": 100}]
        payload = write_json_report(path, "demo", rows, meta={"seed": 1})
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["schema"] == "repro-bench-report/v1"
        assert on_disk["benchmark"] == "demo"
        assert on_disk["rows"] == rows
        assert on_disk["meta"] == {"seed": 1}
