"""Live dataset updates: incremental mutation of every derived structure.

The invariant under test everywhere: a dataset mutated in place must be
indistinguishable — fingerprint, R-tree contents, tensor bits, ``points``
matrix — from a fresh dataset built over the same final contents.
"""

import numpy as np
import pytest

from repro.engine import (
    DatasetDelta,
    LRUCache,
    ParallelExecutor,
    PRSQSpec,
    ReverseSkylineSpec,
    SerialExecutor,
    Session,
    UpdateSpec,
    dataset_fingerprint,
)
from repro.exceptions import EmptyDatasetError, UnknownObjectError
from repro.geometry.rectangle import Rect
from repro.uncertain import CertainDataset, UncertainDataset, UncertainObject
from repro.uncertain.pdf import UniformBoxObject
from repro.uncertain.tensor import DatasetTensor


def obj(oid, rows, probabilities=None, name=None):
    return UncertainObject(oid, rows, probabilities, name=name)


def small_dataset():
    return UncertainDataset(
        [
            obj("a", [[1.0, 1.0], [2.0, 2.0]]),
            obj("b", [[3.0, 3.0]]),
            obj("c", [[5.0, 5.0], [6.0, 6.0], [7.0, 7.0]]),
        ]
    )


def assert_tensor_equivalent(dataset):
    """The (possibly patched) tensor matches a fresh build, bit for bit.

    The patched tensor may keep a wider ``S_max`` than strictly needed
    after deletions; the extra slots must be fully masked out.
    """
    fresh = DatasetTensor(dataset.objects())
    patched = dataset.tensor
    assert patched.ids == fresh.ids
    assert patched.index_of == fresh.index_of
    w = fresh.max_samples
    assert patched.max_samples >= w
    assert np.array_equal(patched.samples[:, :w], fresh.samples)
    assert np.array_equal(patched.probabilities[:, :w], fresh.probabilities)
    assert np.array_equal(patched.mask[:, :w], fresh.mask)
    assert not patched.mask[:, w:].any()
    assert not patched.probabilities[:, w:].any()


def assert_matches_fresh(dataset):
    if isinstance(dataset, CertainDataset):
        rebuilt = CertainDataset(
            dataset.points.copy(),
            ids=dataset.ids(),
            names=[o.name for o in dataset],
            page_size=dataset.page_size,
        )
    else:
        rebuilt = UncertainDataset(
            [
                UncertainObject(
                    o.oid, o.samples.copy(), o.probabilities.copy(), name=o.name
                )
                for o in dataset.objects()
            ],
            page_size=dataset.page_size,
        )
    assert dataset.content_digest() == rebuilt.content_digest()
    assert_tensor_equivalent(dataset)
    if dataset._rtree is not None:
        dataset.rtree.validate(allow_underfull=True)
        assert sorted(dataset.rtree.all_payloads(), key=repr) == sorted(
            dataset.ids(), key=repr
        )


class TestUncertainMutations:
    def test_insert_patches_everything(self):
        ds = small_dataset()
        ds.rtree, ds.tensor  # force both caches so they must be patched
        ds.insert_object(obj("d", [[9.0, 9.0]]))
        assert ds.ids() == ["a", "b", "c", "d"]
        assert ds.index_of("d") == 3 and "d" in ds
        assert_matches_fresh(ds)

    def test_insert_growing_s_max_repads(self):
        ds = small_dataset()
        ds.tensor
        wide = obj("w", [[i * 1.0, i * 1.0] for i in range(5)])
        ds.insert_object(wide)
        assert ds.tensor.max_samples == 5
        assert_matches_fresh(ds)

    def test_delete_patches_everything(self):
        ds = small_dataset()
        ds.rtree, ds.tensor
        removed = ds.delete_object("b")
        assert removed.oid == "b" and "b" not in ds
        assert ds.ids() == ["a", "c"]
        assert ds.index_of("c") == 1  # tail positions reindexed
        with pytest.raises(UnknownObjectError):
            ds.index_of("b")
        assert_matches_fresh(ds)

    def test_update_keeps_position(self):
        ds = small_dataset()
        ds.rtree, ds.tensor
        old = ds.update_object(obj("b", [[8.0, 8.0], [8.5, 8.5]]))
        assert old.samples[0, 0] == 3.0
        assert ds.ids() == ["a", "b", "c"]  # order unchanged
        assert ds.get("b").num_samples == 2
        assert_matches_fresh(ds)

    def test_lazy_caches_stay_lazy(self):
        ds = small_dataset()
        ds.insert_object(obj("d", [[9.0, 9.0]]))
        ds.delete_object("a")
        assert ds._rtree is None and ds._tensor is None
        assert_matches_fresh(ds)

    def test_mutation_errors(self):
        ds = small_dataset()
        with pytest.raises(ValueError, match="duplicate"):
            ds.insert_object(obj("a", [[0.0, 0.0]]))
        with pytest.raises(ValueError, match="dims"):
            ds.insert_object(obj("z", [[1.0, 2.0, 3.0]]))
        with pytest.raises(UnknownObjectError):
            ds.delete_object("zzz")
        with pytest.raises(UnknownObjectError):
            ds.update_object(obj("zzz", [[1.0, 1.0]]))
        ds.delete_object("a")
        ds.delete_object("b")
        with pytest.raises(EmptyDatasetError):
            ds.delete_object("c")

    def test_tensor_repacks_after_transiently_wide_object(self):
        ds = small_dataset()  # widest object has 3 samples
        ds.tensor
        wide = obj("w", [[float(i), float(i)] for i in range(12)])
        ds.insert_object(wide)
        assert ds.tensor.max_samples == 12
        ds.delete_object("w")
        # 12 > 2 * 3: the shrink heuristic must re-pack the padding away
        assert ds.tensor.max_samples == 3
        assert_matches_fresh(ds)
        # narrowing via update triggers the same re-pack
        ds.insert_object(obj("w2", [[float(i), float(i)] for i in range(12)]))
        ds.update_object(obj("w2", [[1.0, 1.0]]))
        assert ds.tensor.max_samples == 3
        assert_matches_fresh(ds)

    def test_incremental_digest_equals_fresh(self):
        ds = small_dataset()
        first = ds.content_digest()
        ds.insert_object(obj("d", [[9.0, 9.0]]))
        ds.update_object(obj("a", [[0.5, 0.5]]))
        ds.delete_object("c")
        assert ds.content_digest() != first
        assert_matches_fresh(ds)
        assert dataset_fingerprint(ds) == ds.content_digest()


class TestDatasetDelta:
    def test_apply_order_and_result(self):
        ds = small_dataset()
        delta = DatasetDelta(
            deletes=("b",),
            updates=(obj("a", [[4.0, 4.0]]),),
            inserts=(obj("d", [[9.0, 9.0]]),),
        )
        assert len(delta) == 3
        ds.apply_delta(delta)
        assert ds.ids() == ["a", "c", "d"]
        assert ds.get("a").samples[0, 0] == 4.0
        assert_matches_fresh(ds)

    def test_delta_validation(self):
        with pytest.raises(ValueError, match="empty delta"):
            DatasetDelta()
        with pytest.raises(ValueError, match="more than one"):
            DatasetDelta(deletes=("x",), inserts=(obj("x", [[1.0, 1.0]]),))
        with pytest.raises(TypeError):
            DatasetDelta(inserts=("not-an-object",))
        # a bare string must not explode into per-character delete ops
        with pytest.raises(TypeError, match="bare string"):
            DatasetDelta(deletes="hot-1")

    def test_multi_op_delta_batches_each_group(self):
        ds = UncertainDataset(
            [obj(f"o{i}", [[float(i), float(i)]]) for i in range(8)]
        )
        ds.rtree, ds.tensor
        ds.apply_delta(
            DatasetDelta(
                deletes=("o1", "o4", "o6"),
                updates=(
                    obj("o0", [[10.0, 10.0], [11.0, 11.0]]),
                    obj("o7", [[12.0, 12.0]]),
                ),
                inserts=(obj("n1", [[13.0, 13.0]]), obj("n2", [[14.0, 14.0]])),
            )
        )
        assert ds.ids() == ["o0", "o2", "o3", "o5", "o7", "n1", "n2"]
        assert_matches_fresh(ds)

    def test_bad_delta_is_atomic(self):
        ds = small_dataset()
        before = ds.content_digest()
        with pytest.raises(UnknownObjectError):
            ds.apply_delta(
                DatasetDelta(
                    deletes=("zzz",), inserts=(obj("d", [[9.0, 9.0]]),)
                )
            )
        with pytest.raises(ValueError, match="duplicate"):
            ds.apply_delta(DatasetDelta(inserts=(obj("a", [[1.0, 1.0]]),)))
        with pytest.raises(EmptyDatasetError):
            ds.apply_delta(
                DatasetDelta(
                    deletes=("a", "b", "c"), inserts=(obj("d", [[1.0, 1.0]]),)
                )
            )
        assert ds.content_digest() == before
        assert ds.ids() == ["a", "b", "c"]

    def test_single_op_constructors(self):
        assert DatasetDelta.insertion(obj("x", [[1.0, 1.0]])).inserts
        assert DatasetDelta.deletion("x").deletes == ("x",)
        assert DatasetDelta.replacement(obj("x", [[1.0, 1.0]])).updates


class TestCertainMutations:
    def _ds(self):
        return CertainDataset(
            np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
            ids=["x", "y", "z"],
            names=["X", "Y", "Z"],
        )

    def test_points_matrix_kept_in_sync(self):
        ds = self._ds()
        ds.rtree, ds.tensor
        ds.insert_object(UncertainObject.certain("w", [7.0, 8.0]))
        ds.delete_object("y")
        ds.update_object(UncertainObject.certain("z", [5.5, 6.5]))
        assert np.array_equal(
            ds.points, np.array([[1.0, 2.0], [5.5, 6.5], [7.0, 8.0]])
        )
        assert [obj.oid for obj in ds] == ["x", "z", "w"]
        assert_matches_fresh(ds)

    def test_points_matrix_is_frozen(self):
        # snapshots and worker handoffs share .points by reference; an
        # in-place write would corrupt every reader, so both constructors
        # hand out read-only matrices
        ds = self._ds()
        with pytest.raises(ValueError):
            ds.points[0, 0] = 99.0
        shared = CertainDataset.from_objects(list(ds))
        with pytest.raises(ValueError):
            shared.points[0, 0] = 99.0
        ds.insert_object(UncertainObject.certain("w", [7.0, 8.0]))
        with pytest.raises(ValueError):
            ds.points[0, 0] = 99.0  # still frozen after a rebuild

    def test_multi_sample_insert_rejected(self):
        ds = self._ds()
        with pytest.raises(ValueError, match="single-sample"):
            ds.insert_object(obj("u", [[1.0, 1.0], [2.0, 2.0]]))
        with pytest.raises(ValueError, match="single-sample"):
            ds.update_object(obj("x", [[1.0, 1.0], [2.0, 2.0]]))

    def test_without_shares_objects_and_page_size(self):
        ds = CertainDataset(
            np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
            ids=["x", "y", "z"],
            page_size=512,
        )
        ds.tensor
        reduced = ds.without(["y"])
        assert isinstance(reduced, CertainDataset)
        assert reduced.page_size == 512
        assert reduced.get("x") is ds.get("x")  # shared, not copied
        assert reduced._tensor is not None  # seeded by row deletion
        assert_tensor_equivalent(reduced)
        assert np.array_equal(reduced.points, np.array([[1.0, 2.0], [5.0, 6.0]]))

    def test_uncertain_without_shares_and_seeds(self):
        ds = small_dataset()
        ds.tensor
        reduced = ds.without(["b", "nonexistent"])
        assert reduced.page_size == ds.page_size
        assert reduced.get("a") is ds.get("a")
        assert reduced._tensor is not None
        assert_tensor_equivalent(reduced)


class TestSessionApply:
    def test_apply_bumps_version_and_fingerprint(self):
        session = Session(small_dataset())
        fp0 = session.fingerprint
        assert session.version == 0
        summary = session.apply(DatasetDelta.insertion(obj("d", [[9.0, 9.0]])))
        assert summary["version"] == session.version == 1
        assert summary["previous_fingerprint"] == fp0
        assert summary["fingerprint"] == session.fingerprint != fp0
        assert summary["inserted"] == 1 and summary["n_objects"] == 4

    def test_apply_invalidates_cached_results(self):
        session = Session(small_dataset(), cache=LRUCache(maxsize=64))
        spec = PRSQSpec(q=(4.0, 4.0), alpha=0.5, want="probabilities")
        before = session.query(spec).value.probabilities
        session.apply(DatasetDelta.deletion("b"))
        outcome = session.query(spec)
        assert not outcome.run.cached  # old fingerprint keys never hit
        assert set(outcome.value.probabilities) == {"a", "c"}
        fresh = Session(UncertainDataset(session.dataset.objects()))
        ref = fresh.query(spec).value.probabilities
        assert {k: v.hex() for k, v in outcome.value.probabilities.items()} == {
            k: v.hex() for k, v in ref.items()
        }
        assert before != outcome.value.probabilities

    def test_apply_honors_lazy_index(self):
        session = Session(small_dataset(), build_index=False)
        session.apply(DatasetDelta.insertion(obj("d", [[9.0, 9.0]])))
        assert session.dataset._rtree is None  # still lazy
        session.dataset.rtree.validate(allow_underfull=True)

    def test_apply_rejects_pdf_sessions(self):
        session = Session.from_pdf_objects(
            [
                UniformBoxObject("a", Rect([0.0, 0.0], [1.0, 1.0])),
                UniformBoxObject("b", Rect([2.0, 2.0], [3.0, 3.0])),
            ]
        )
        with pytest.raises(ValueError, match="pdf"):
            session.apply(DatasetDelta.deletion("a"))
        # the pdf side survives the refused apply
        assert session.has_pdf_objects

    def test_update_spec_roundtrip_through_session(self):
        session = Session(small_dataset())
        env = session.query(UpdateSpec(deletes=("b",)))
        assert env.ok and env.value.deleted == 1
        assert not env.run.cached
        # identical spec again: never served from cache, fails for real
        with pytest.raises(UnknownObjectError):
            session.query(UpdateSpec(deletes=("b",)))


class TestReplaceDataset:
    def test_pdf_session_requires_pdf_objects(self):
        boxes = [
            UniformBoxObject("a", Rect([0.0, 0.0], [1.0, 1.0])),
            UniformBoxObject("b", Rect([2.0, 2.0], [3.0, 3.0])),
        ]
        session = Session.from_pdf_objects(boxes)
        with pytest.raises(ValueError, match="pdf_objects"):
            session.replace_dataset(small_dataset())
        # the failed call must not have wiped the pdf side
        assert session.has_pdf_objects
        session.pdf_object("a")

        # explicit pdf_objects: the pdf side is swapped coherently
        new_boxes = [
            UniformBoxObject("c", Rect([5.0, 5.0], [6.0, 6.0])),
            UniformBoxObject("d", Rect([7.0, 7.0], [8.0, 8.0])),
        ]
        rng = np.random.default_rng(0)
        session.replace_dataset(
            UncertainDataset([b.discretize(16, rng) for b in new_boxes]),
            pdf_objects=new_boxes,
        )
        session.pdf_object("c")
        with pytest.raises(UnknownObjectError):
            session.pdf_object("a")

        # explicit empty sequence drops pdf support deliberately
        session.replace_dataset(small_dataset(), pdf_objects=())
        assert not session.has_pdf_objects

    def test_honors_build_index_setting(self):
        lazy = Session(small_dataset(), build_index=False)
        replacement = small_dataset()
        lazy.replace_dataset(replacement)
        assert replacement._rtree is None  # no eager bulk load
        eager = Session(small_dataset(), build_index=True)
        replacement2 = small_dataset()
        eager.replace_dataset(replacement2)
        assert replacement2._rtree is not None

    def test_bumps_version(self):
        session = Session(small_dataset())
        session.replace_dataset(small_dataset())
        assert session.version == 1


class TestExecutorsAndUpdates:
    def test_parallel_executor_rejects_mutations(self):
        session = Session(small_dataset())
        specs = [PRSQSpec(q=(4.0, 4.0), alpha=0.5), UpdateSpec(deletes=("b",))]
        for workers in (1, 2):  # the serial fallback must reject too
            with pytest.raises(ValueError, match="mutating"):
                ParallelExecutor(workers=workers).map(session, specs)
        assert "b" in session.dataset  # nothing was applied

    def test_serial_batch_interleaves_updates_and_queries(self):
        session = Session(small_dataset())
        specs = [
            PRSQSpec(q=(4.0, 4.0), alpha=0.5, want="probabilities"),
            UpdateSpec(deletes=("b",)),
            PRSQSpec(q=(4.0, 4.0), alpha=0.5, want="probabilities"),
        ]
        outcomes = SerialExecutor().map(session, specs)
        assert [o.ok for o in outcomes] == [True, True, True]
        assert set(outcomes[0].value) == {"a", "b", "c"}
        assert set(outcomes[2].value) == {"a", "c"}

    def test_serial_executor_reports_cache_stats(self):
        session = Session(small_dataset())
        executor = SerialExecutor()
        spec = PRSQSpec(q=(4.0, 4.0), alpha=0.5)
        executor.map(session, [spec, spec])
        stats = executor.last_cache_stats
        assert stats is not None and stats.hits >= 1 and stats.misses >= 1

    def test_parallel_executor_merges_worker_cache_stats(self):
        session = Session(small_dataset())
        executor = ParallelExecutor(workers=2, chunk_size=1)
        spec_a = PRSQSpec(q=(4.0, 4.0), alpha=0.5)
        spec_b = PRSQSpec(q=(4.5, 4.5), alpha=0.5)
        executor.map(session, [spec_a, spec_b, spec_a, spec_b])
        stats = executor.last_cache_stats
        assert stats is not None
        # outer result + inner probability map miss once per cold evaluation
        assert stats.misses >= 2
        assert stats.lookups == stats.hits + stats.misses


class TestUpdateSpecValidation:
    def test_structural_errors(self):
        with pytest.raises(ValueError, match="empty update"):
            UpdateSpec()
        with pytest.raises(ValueError, match="bare string"):
            UpdateSpec(deletes="hot-1")
        with pytest.raises(ValueError, match="more than one"):
            UpdateSpec(deletes=("x",), inserts=((("x"), ((1.0, 1.0),), None, None),))
        with pytest.raises(ValueError, match="hashable"):
            UpdateSpec(deletes=([1, 2],))
        with pytest.raises(ValueError, match="4-tuples"):
            UpdateSpec(inserts=(("just-an-id",),))
        with pytest.raises(ValueError, match="no samples"):
            UpdateSpec(inserts=(("x", (), None, None),))

    def test_accepts_objects_and_normalizes(self):
        spec = UpdateSpec(inserts=(obj("x", [[1, 2]], name="n"),))
        assert spec.inserts == (("x", ((1.0, 2.0),), (1.0,), "n"),)
        delta = spec.to_delta()
        assert delta.inserts[0] == obj("x", [[1.0, 2.0]], name="n")
        assert UpdateSpec.from_delta(delta) == spec

    def test_bad_probabilities_fail_at_execution_not_parse(self):
        spec = UpdateSpec(inserts=(("x", ((1.0, 2.0),), (0.25,), None),))
        with pytest.raises(Exception):
            spec.to_delta()

    def test_client_rejects_object_plus_overrides(self):
        from repro.api import connect

        client = connect(small_dataset())
        replacement = obj("a", [[9.0, 9.0]])
        with pytest.raises(ValueError, match="cannot combine"):
            client.update(replacement, samples=[[1.0, 1.0]])
        # the loud error prevents the silent-drop misuse; the two
        # supported spellings still work
        assert client.update(replacement).ok
        assert client.update("a", samples=[[2.0, 2.0]]).ok
