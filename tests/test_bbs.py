"""Unit tests for BBS (branch-and-bound skyline over the R-tree)."""

import numpy as np
import pytest

from repro.index.bulk import bulk_load
from repro.skyline.bbs import dynamic_skyline_bbs, skyline_bbs
from repro.skyline.classic import skyline_indices
from repro.skyline.dynamic import dynamic_skyline_indices
from repro.uncertain.dataset import CertainDataset


def point_tree(points, max_entries=6):
    return bulk_load(
        [(np.asarray(p, dtype=float), i) for i, p in enumerate(points)],
        dims=len(points[0]),
        max_entries=max_entries,
    )


class TestClassicBBS:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_quadratic_skyline(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, size=(80, 2))
        tree = point_tree(points)
        assert sorted(skyline_bbs(tree)) == skyline_indices(points)

    def test_three_dims(self, rng):
        points = rng.uniform(0, 10, size=(60, 3))
        tree = point_tree(points)
        assert sorted(skyline_bbs(tree)) == skyline_indices(points)

    def test_single_point(self):
        tree = point_tree([[3.0, 4.0]])
        assert skyline_bbs(tree) == [0]

    def test_empty_tree(self):
        from repro.index.rtree import RTree

        assert skyline_bbs(RTree(dims=2)) == []

    def test_duplicates_kept(self):
        tree = point_tree([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert sorted(skyline_bbs(tree)) == [0, 1]

    def test_access_pruning(self, rng):
        """BBS must not read the whole tree when the skyline is tiny."""
        points = rng.uniform(5, 10, size=(2000, 2))
        points[0] = [0.0, 0.0]  # one point dominating everything
        tree = point_tree(points, max_entries=16)
        tree.stats.reset()
        result = skyline_bbs(tree)
        assert result == [0]
        assert tree.stats.node_accesses < tree.node_count()


class TestDynamicBBS:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_quadratic_dynamic_skyline(self, seed):
        rng = np.random.default_rng(seed + 10)
        points = rng.uniform(0, 10, size=(60, 2))
        center = rng.uniform(0, 10, size=2)
        ds = CertainDataset(points)
        expected = sorted(dynamic_skyline_indices(points, center))
        assert sorted(dynamic_skyline_bbs(ds, center)) == expected

    def test_center_object_excluded(self):
        ds = CertainDataset([[5.0, 5.0], [6.0, 6.0], [1.0, 9.0]])
        members = dynamic_skyline_bbs(ds, [5.0, 5.0])
        assert 0 not in members  # the object at the center itself

    def test_transformed_lo_inside_projection_is_zero(self):
        from repro.geometry.rectangle import Rect
        from repro.skyline.bbs import _transformed_lo

        rect = Rect([2.0, 2.0], [4.0, 4.0])
        lo = _transformed_lo(rect, np.array([3.0, 3.0]))
        assert lo.tolist() == [0.0, 0.0]

    def test_transformed_lo_outside(self):
        from repro.geometry.rectangle import Rect
        from repro.skyline.bbs import _transformed_lo

        rect = Rect([2.0, 2.0], [4.0, 4.0])
        lo = _transformed_lo(rect, np.array([0.0, 5.0]))
        assert lo.tolist() == [2.0, 1.0]
