"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.datasets.cardb import (
    DEFAULT_QUERY as CARDB_QUERY,
    NON_ANSWER_CAR,
    NON_ANSWER_ID,
    generate_cardb,
    pinned_cause_points,
)
from repro.datasets.nba import (
    DEFAULT_QUERY as NBA_QUERY,
    STEVE_JOHN,
    generate_nba,
    legend_names,
)
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import (
    generate_named,
    generate_uncertain_dataset,
)


class TestSyntheticUncertain:
    def test_cardinality_and_dims(self):
        ds = generate_uncertain_dataset(50, 3, seed=0)
        assert len(ds) == 50
        assert ds.dims == 3

    def test_sample_counts_in_range(self):
        ds = generate_uncertain_dataset(80, 2, samples_range=(2, 4), seed=0)
        counts = {obj.num_samples for obj in ds}
        assert counts <= {2, 3, 4}
        assert len(counts) > 1

    def test_radius_bounds_object_extent(self):
        r_max = 5.0
        ds = generate_uncertain_dataset(
            60, 2, radius_range=(0.0, r_max), seed=1
        )
        for obj in ds:
            # Samples live in a rectangle inscribed in the radius-r sphere;
            # the MBR diagonal is at most the sphere diameter.
            diag = float(np.linalg.norm(obj.mbr.extents))
            assert diag <= 2 * r_max + 1e-9

    def test_deterministic_with_seed(self):
        a = generate_uncertain_dataset(20, 2, seed=42)
        b = generate_uncertain_dataset(20, 2, seed=42)
        for oa, ob in zip(a, b):
            assert np.array_equal(oa.samples, ob.samples)

    def test_skewed_centers_lean_low(self):
        uniform = generate_uncertain_dataset(
            400, 2, center_distribution="uniform", seed=2
        )
        skewed = generate_uncertain_dataset(
            400, 2, center_distribution="skew", seed=2
        )
        mean_u = np.mean([obj.expected_position() for obj in uniform])
        mean_s = np.mean([obj.expected_position() for obj in skewed])
        assert mean_s < mean_u

    def test_gaussian_radii_concentrate(self):
        wide = generate_uncertain_dataset(
            300, 2, radius_distribution="uniform", radius_range=(0, 10), seed=3
        )
        tight = generate_uncertain_dataset(
            300, 2, radius_distribution="gauss", radius_range=(0, 10), seed=3
        )
        spread_w = np.std([obj.mbr.margin() for obj in wide])
        spread_t = np.std([obj.mbr.margin() for obj in tight])
        assert spread_t < spread_w

    @pytest.mark.parametrize("name", ["lUrU", "lUrG", "lSrU", "lSrG"])
    def test_named_distributions(self, name):
        ds = generate_named(name, 30, 2, seed=4)
        assert len(ds) == 30

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            generate_named("lXrX", 10, 2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_uncertain_dataset(0, 2)
        with pytest.raises(ValueError):
            generate_uncertain_dataset(5, 2, radius_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            generate_uncertain_dataset(5, 2, samples_range=(0, 2))
        with pytest.raises(ValueError):
            generate_uncertain_dataset(5, 2, center_distribution="weird")
        with pytest.raises(ValueError):
            generate_uncertain_dataset(5, 2, radius_distribution="weird")


class TestSyntheticCertain:
    @pytest.mark.parametrize(
        "distribution", ["independent", "correlated", "anticorrelated", "clustered"]
    )
    def test_generation(self, distribution):
        ds = generate_certain_dataset(200, 2, distribution=distribution, seed=0)
        assert len(ds) == 200
        assert ds.points.shape == (200, 2)
        assert (ds.points >= 0).all() and (ds.points <= 10_000).all()

    def test_correlated_has_positive_correlation(self):
        ds = generate_certain_dataset(2000, 2, distribution="correlated", seed=1)
        corr = np.corrcoef(ds.points[:, 0], ds.points[:, 1])[0, 1]
        assert corr > 0.8

    def test_anticorrelated_has_negative_correlation(self):
        ds = generate_certain_dataset(2000, 2, distribution="anticorrelated", seed=1)
        corr = np.corrcoef(ds.points[:, 0], ds.points[:, 1])[0, 1]
        assert corr < -0.3

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            generate_certain_dataset(10, 2, distribution="mystery")

    def test_deterministic_with_seed(self):
        a = generate_certain_dataset(50, 3, seed=9)
        b = generate_certain_dataset(50, 3, seed=9)
        assert np.array_equal(a.points, b.points)


class TestNBA:
    def test_roster_present(self):
        ds = generate_nba(n_players=200)
        assert STEVE_JOHN in ds
        for name in legend_names():
            assert name in ds

    def test_shape(self):
        ds = generate_nba(n_players=200)
        assert ds.dims == 4
        assert len(ds) == 200
        assert all(1 <= obj.num_samples <= 17 for obj in ds)

    def test_equal_season_probabilities(self):
        ds = generate_nba(n_players=100)
        obj = ds.get(STEVE_JOHN)
        assert np.allclose(obj.probabilities, 1.0 / obj.num_samples)

    def test_minimum_roster_size_enforced(self):
        with pytest.raises(ValueError):
            generate_nba(n_players=5)

    def test_steve_john_is_non_answer(self):
        from repro.prsq.probability import reverse_skyline_probability

        ds = generate_nba(n_players=300)
        assert reverse_skyline_probability(ds, STEVE_JOHN, NBA_QUERY) < 0.5


class TestCarDB:
    def test_case_study_actors_present(self):
        ds = generate_cardb(n=500)
        assert NON_ANSWER_ID in ds
        assert ds.point_of(NON_ANSWER_ID).tolist() == list(NON_ANSWER_CAR)

    def test_negative_price_mileage_correlation(self):
        ds = generate_cardb(n=5000, include_case_study=False)
        corr = np.corrcoef(ds.points[:, 0], ds.points[:, 1])[0, 1]
        assert corr < -0.5

    def test_pinned_causes_dominate_q(self):
        from repro.geometry.dominance import dynamically_dominates

        an = np.array(NON_ANSWER_CAR)
        for point in pinned_cause_points():
            assert dynamically_dominates(np.array(point), CARDB_QUERY, an)

    def test_cardinality(self):
        ds = generate_cardb(n=1000)
        assert len(ds) == 1000

    def test_too_small_n_rejected(self):
        with pytest.raises(ValueError):
            generate_cardb(n=3)
