"""The v2 public API: registry dispatch, client facade, envelopes, shims."""

import json
import warnings
from dataclasses import dataclass
from typing import ClassVar, Tuple

import pytest

from repro.api import (
    Client,
    QueryResult,
    REGISTRY,
    connect,
    connect_pdf,
)
from repro.api.results import CausalityAnswer, PRSQResult
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine import ParallelExecutor, PRSQSpec, Session
from repro.engine.plan import QueryPlan
from repro.engine.spec import QuerySpec, spec_from_dict, spec_to_dict
from repro.exceptions import UnknownObjectError
from repro.geometry.rectangle import Rect
from repro.uncertain.pdf import UniformBoxObject

Q = (5000.0, 5000.0)


@pytest.fixture(scope="module")
def uncertain_ds():
    return generate_uncertain_dataset(60, 2, seed=7)


@pytest.fixture(scope="module")
def certain_ds():
    return generate_certain_dataset(120, 2, seed=7)


class TestClientFacade:
    def test_prsq_envelope(self, uncertain_ds):
        client = connect(uncertain_ds)
        env = client.prsq(Q, alpha=0.5, want="non_answers")
        assert env.ok and env.schema_version == 2
        assert env.kind == "prsq"
        assert env.fingerprint == client.fingerprint
        assert isinstance(env.value, PRSQResult)
        assert env.value.ids  # this draw has non-answers
        assert env.to_raw() == list(env.value.ids)

    def test_causality_envelope_has_node_accesses(self, uncertain_ds):
        client = connect(uncertain_ds)
        an = client.prsq(Q, alpha=0.5, want="non_answers").value.ids[0]
        env = client.causality(an=an, q=Q, alpha=0.5)
        assert isinstance(env.value, CausalityAnswer)
        assert env.run.node_accesses == env.value.stats.node_accesses
        # the raw shim shape is the legacy CausalityResult
        assert env.to_raw().an_oid == an

    def test_every_certain_family_returns_typed_envelope(self, certain_ds):
        client = connect(certain_ds)
        sky = client.reverse_skyline(Q)
        band = client.reverse_k_skyband(Q, k=2)
        topk = client.reverse_top_k(
            (800.0, 900.0), k=5, weights=((1.0, 0.3), (0.2, 1.0))
        )
        assert sky.ok and band.ok and topk.ok
        an = next(
            oid for oid in certain_ds.ids() if oid not in set(sky.value.ids)
        )
        cr = client.causality_certain(an=an, q=Q)
        skyband_cr = client.k_skyband_causality(an=an, q=Q, k=1)
        for env in (sky, band, topk, cr, skyband_cr):
            back = QueryResult.from_dict(json.loads(json.dumps(env.to_dict())))
            assert back == env

    def test_connect_pdf(self):
        objects = [
            UniformBoxObject("a", Rect([4.0, 4.0], [4.6, 4.6])),
            UniformBoxObject("b", Rect([4.2, 4.2], [4.9, 4.9])),
        ]
        client = connect_pdf(objects, samples_per_object=16, seed=0)
        env = client.pdf_causality(an="a", q=(5.0, 5.0), alpha=0.5)
        assert env.ok and isinstance(env.value, CausalityAnswer)

    def test_connect_from_csv_path(self, tmp_path, uncertain_ds):
        from repro.io.csvio import save_uncertain_csv

        path = tmp_path / "data.csv"
        save_uncertain_csv(uncertain_ds, path)
        client = connect(path)
        assert client.prsq(Q, alpha=0.5).ok
        with pytest.raises(ValueError, match="dataset_kind"):
            connect(path, dataset_kind="mystery")

    def test_single_query_errors_raise(self, uncertain_ds):
        client = connect(uncertain_ds)
        with pytest.raises(UnknownObjectError):
            client.causality(an="no-such-id", q=Q, alpha=0.5)


class TestBatchBuilder:
    def test_fluent_batch_preserves_order(self, uncertain_ds):
        client = connect(uncertain_ds)
        batch = (
            client.batch()
            .prsq(Q, alpha=0.3)
            .prsq(Q, alpha=0.5, want="non_answers")
            .prsq(Q, alpha=0.7, want="probabilities")
        )
        assert len(batch) == 3
        envelopes = batch.run()
        assert [e.spec.alpha for e in envelopes] == [0.3, 0.5, 0.7]
        assert all(e.ok for e in envelopes)

    def test_stream_is_incremental_and_ordered(self, uncertain_ds):
        client = connect(uncertain_ds)
        batch = client.batch().extend(
            PRSQSpec(q=(4800.0 + 40 * i, 5100.0), alpha=0.5) for i in range(5)
        )
        seen = []
        stream = batch.stream()
        first = next(stream)  # arrives before the rest have run
        seen.append(first)
        seen.extend(stream)
        assert [e.spec for e in seen] == batch.specs
        assert [e.value for e in seen] == [e.value for e in batch.run()]

    def test_parallel_stream_matches_serial(self, uncertain_ds):
        client = connect(uncertain_ds)
        batch = client.batch().extend(
            PRSQSpec(q=(4800.0 + 40 * i, 5100.0), alpha=0.5) for i in range(6)
        )
        serial = [e.value for e in batch.stream()]
        parallel = [
            e.value
            for e in batch.stream(executor=ParallelExecutor(workers=2))
        ]
        assert serial == parallel

    def test_batch_error_envelope_is_machine_actionable(self, uncertain_ds):
        client = connect(uncertain_ds)
        envelopes = (
            client.batch()
            .prsq(Q, alpha=0.5)
            .causality(an="no-such-id", q=Q, alpha=0.5)
            .run()
        )
        good, bad = envelopes
        assert good.ok and not bad.ok
        assert bad.value is None
        assert bad.error.code == "unknown_object"
        assert bad.error.type == "UnknownObjectError"
        assert "no-such-id" in bad.error.message
        with pytest.raises(RuntimeError, match="unknown_object"):
            bad.to_raw()
        # failed envelopes survive the JSON round trip too
        back = QueryResult.from_dict(json.loads(json.dumps(bad.to_dict())))
        assert back == bad


# ---------------------------------------------------------------------------
# the extensibility contract: a new family needs zero engine edits
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CountInWindowSpec(QuerySpec):
    """Toy family: how many objects fall in a Chebyshev window around q."""

    q: Tuple[float, ...] = ()
    radius: float = 100.0

    kind: ClassVar[str] = "count_in_window"
    dataset_kind: ClassVar[str] = "uncertain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", tuple(float(v) for v in self.q))
        if self.radius <= 0:
            raise ValueError(f"radius must be > 0, got {self.radius}")


@dataclass(frozen=True)
class CountResult:
    count: int

    @classmethod
    def from_raw(cls, value, spec=None):
        return cls(count=int(value))

    def to_raw(self):
        return self.count

    def to_dict(self):
        return {"count": self.count}

    @classmethod
    def from_dict(cls, payload):
        return cls(count=payload["count"])


def plan_count_in_window(spec: CountInWindowSpec) -> QueryPlan:
    def run(session):
        count = 0
        for obj in session.dataset:
            center = obj.samples.mean(axis=0)
            if all(
                abs(center[d] - spec.q[d]) <= spec.radius
                for d in range(len(spec.q))
            ):
                count += 1
        return count

    return QueryPlan(
        spec=spec,
        steps=(f"chebyshev-window-count radius={spec.radius}",),
        runner=run,
    )


class TestRegistryExtension:
    @pytest.fixture(autouse=True)
    def _registered(self):
        REGISTRY.register(
            CountInWindowSpec,
            planner=plan_count_in_window,
            result_cls=CountResult,
        )
        yield
        REGISTRY.unregister("count_in_window")

    def test_register_plan_execute_serialize_without_engine_edits(
        self, uncertain_ds, tmp_path, capsys
    ):
        # parse: the registry now understands the new kind from JSON
        spec = spec_from_dict(
            {"kind": "count_in_window", "q": [5000, 5000], "radius": 2000}
        )
        assert spec == CountInWindowSpec(q=Q, radius=2000.0)
        assert spec_from_dict(json.loads(json.dumps(spec_to_dict(spec)))) == spec

        # plan + execute through the untouched engine
        client = Client(Session(uncertain_ds))
        env = client.query(spec)
        assert env.ok and isinstance(env.value, CountResult)
        assert env.value.count >= 0

        # serialize: uniform envelope, byte-identical JSON round trip
        wire = json.dumps(env.to_dict())
        back = QueryResult.from_dict(json.loads(wire))
        assert back == env
        assert json.dumps(back.to_dict()) == wire

        # and the stock CLI batch path runs the new family end to end
        from repro.io.cli import main as cli_main
        from repro.io.csvio import save_uncertain_csv

        data = tmp_path / "data.csv"
        save_uncertain_csv(uncertain_ds, data)
        queries = tmp_path / "queries.json"
        queries.write_text(
            json.dumps(
                [{"kind": "count_in_window", "q": [5000, 5000], "radius": 2000}]
            )
        )
        rc = cli_main(
            ["batch", "--data", str(data), "--queries", str(queries), "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["kind"] == "count_in_window"
        assert payload[0]["value"]["count"] == env.value.count

    def test_custom_family_with_own_config_dataclass(self, uncertain_ds):
        # The registry must serialize nested config dataclasses generically,
        # not just the engine's CPConfig.
        @dataclass(frozen=True)
        class WindowConfig:
            use_mean: bool = True
            norm: str = "chebyshev"

        @dataclass(frozen=True)
        class ConfiguredCountSpec(QuerySpec):
            q: Tuple[float, ...] = ()
            config: WindowConfig = WindowConfig()

            kind: ClassVar[str] = "configured_count"
            dataset_kind: ClassVar[str] = "uncertain"
            cacheable: ClassVar[bool] = True
            mutates: ClassVar[bool] = False

            def __post_init__(self):
                object.__setattr__(self, "q", tuple(float(v) for v in self.q))

        def plan_configured(spec):
            return QueryPlan(
                spec=spec, steps=("count",), runner=lambda s: len(s.dataset)
            )

        REGISTRY.register(
            ConfiguredCountSpec, planner=plan_configured, result_cls=CountResult
        )
        try:
            spec = ConfiguredCountSpec(q=Q, config=WindowConfig(norm="l2"))
            wire = json.dumps(spec_to_dict(spec))
            assert json.loads(wire)["config"] == {
                "use_mean": True,
                "norm": "l2",
            }
            assert spec_from_dict(json.loads(wire)) == spec
            with pytest.raises(ValueError, match="config field"):
                spec_from_dict(
                    {"kind": "configured_count", "q": [1, 2],
                     "config": {"bogus": 1}}
                )
            env = Client(Session(uncertain_ds)).query(spec)
            assert env.ok and env.value.count == len(uncertain_ds)
            assert QueryResult.from_dict(json.loads(json.dumps(env.to_dict()))) == env
        finally:
            REGISTRY.unregister("configured_count")

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            REGISTRY.register(
                CountInWindowSpec,
                planner=plan_count_in_window,
                result_cls=CountResult,
            )
        REGISTRY.register(  # explicit replace is allowed
            CountInWindowSpec,
            planner=plan_count_in_window,
            result_cls=CountResult,
            replace=True,
        )


class TestLegacyShims:
    def test_run_warns_and_returns_raw_payload(self, uncertain_ds):
        session = Session(uncertain_ds)
        spec = PRSQSpec(q=Q, alpha=0.5, want="non_answers")
        with pytest.warns(DeprecationWarning, match="Session.run"):
            raw = session.run(spec)
        assert raw == session.query(spec).to_raw()
        assert isinstance(raw, list)

    def test_execute_warns_and_returns_outcome(self, uncertain_ds):
        session = Session(uncertain_ds)
        spec = PRSQSpec(q=Q, alpha=0.5)
        with pytest.warns(DeprecationWarning, match="Session.execute"):
            outcome = session.execute(spec)
        assert outcome.value == session.query(spec).to_raw()

    def test_query_does_not_warn(self, uncertain_ds):
        session = Session(uncertain_ds)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.query(PRSQSpec(q=Q, alpha=0.5))


class TestValidatorConsistency:
    def test_alpha_rejects_bool_like_k_does(self):
        with pytest.raises(ValueError, match="number"):
            PRSQSpec(q=Q, alpha=True)
        with pytest.raises(ValueError, match="number"):
            PRSQSpec(q=Q, alpha=False)
        # plain ints in range stay accepted
        assert PRSQSpec(q=Q, alpha=1).alpha == 1
