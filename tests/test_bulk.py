"""Unit tests for STR bulk loading."""

import numpy as np
import pytest

from repro.geometry.rectangle import Rect
from repro.index.bulk import bulk_load
from repro.index.rtree import RTree


def random_items(rng, n, dims=2):
    pts = rng.uniform(0, 100, size=(n, dims))
    return [(Rect.from_point(pts[i]), i) for i in range(n)]


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load([], dims=2)
        assert len(tree) == 0

    def test_single_item(self):
        tree = bulk_load([(Rect.from_point([1.0, 2.0]), "a")], dims=2)
        assert tree.range_search(Rect([0, 0], [5, 5])) == ["a"]

    def test_accepts_raw_points(self):
        tree = bulk_load([([1.0, 2.0], "a"), ([3.0, 4.0], "b")], dims=2)
        assert sorted(tree.all_payloads()) == ["a", "b"]

    @pytest.mark.parametrize("n", [5, 50, 500, 3000])
    def test_all_items_present(self, rng, n):
        tree = bulk_load(random_items(rng, n), dims=2)
        assert len(tree) == n
        assert sorted(tree.all_payloads()) == list(range(n))

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_structurally_valid(self, rng, dims):
        tree = bulk_load(random_items(rng, 400, dims=dims), dims=dims)
        tree.validate(allow_underfull=True)

    def test_capacity_respected(self, rng):
        tree = bulk_load(random_items(rng, 300), dims=2, max_entries=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node) <= 8
            if not node.is_leaf:
                stack.extend(node.children)

    def test_queries_match_insertion_built_tree(self, rng):
        items = random_items(rng, 250)
        bulk = bulk_load(items, dims=2, max_entries=8)
        incremental = RTree(dims=2, max_entries=8)
        for rect, payload in items:
            incremental.insert(rect, payload)
        for _ in range(25):
            lo = rng.uniform(0, 90, size=2)
            window = Rect(lo, lo + rng.uniform(1, 25, size=2))
            assert sorted(bulk.range_search(window)) == sorted(
                incremental.range_search(window)
            )

    def test_bulk_tree_fewer_node_accesses_than_scan(self, rng):
        tree = bulk_load(random_items(rng, 2000), dims=2)
        tree.stats.reset()
        tree.range_search(Rect([0, 0], [5, 5]))
        assert tree.stats.node_accesses < tree.node_count()
