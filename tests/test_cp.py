"""Unit and integration tests for algorithm CP (CR2PRSQ)."""

import numpy as np
import pytest

from repro.core.cp import CPConfig, compute_causality, compute_causality_pdf
from repro.core.model import CauseKind
from repro.core.naive import brute_force_causality
from repro.exceptions import NotANonAnswerError
from repro.geometry.rectangle import Rect
from repro.prsq.query import prsq_non_answers, prsq_probabilities
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from repro.uncertain.pdf import TruncatedGaussianObject, UniformBoxObject
from tests.conftest import make_uncertain_dataset


def first_non_answer(ds, q, alpha):
    nas = prsq_non_answers(ds, q, alpha, use_index=False)
    return nas[0] if nas else None


class TestInputValidation:
    def test_answer_rejected(self):
        ds = UncertainDataset(
            [
                UncertainObject("u", [[2.0, 2.0]]),
                UncertainObject("v", [[2.5, 2.5]]),
            ]
        )
        with pytest.raises(NotANonAnswerError):
            compute_causality(ds, "v", [3.0, 3.0], alpha=0.5)

    def test_invalid_alpha(self):
        ds = UncertainDataset([UncertainObject("u", [[0.0, 0.0]])])
        with pytest.raises(ValueError):
            compute_causality(ds, "u", [1.0, 1.0], alpha=1.5)


class TestKnownScenarios:
    def test_single_counterfactual_cause(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("cf", [[2.4, 2.4]]),
                UncertainObject("far", [[9.0, 0.5]]),
            ]
        )
        res = compute_causality(ds, "an", [3.0, 3.0], alpha=0.5)
        assert res.cause_ids() == ["cf"]
        assert res.causes["cf"].kind is CauseKind.COUNTERFACTUAL
        assert res.responsibility("cf") == 1.0

    def test_two_blockers_share_responsibility(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("b1", [[2.3, 2.3]]),
                UncertainObject("b2", [[2.5, 2.5]]),
            ]
        )
        res = compute_causality(ds, "an", [3.0, 3.0], alpha=0.5)
        assert res.cause_ids() == ["b1", "b2"]
        assert res.responsibility("b1") == pytest.approx(0.5)
        assert res.responsibility("b2") == pytest.approx(0.5)
        assert res.causes["b1"].contingency_set == frozenset({"b2"})

    def test_partial_dominator_probabilities(self):
        """Paper Fig. 1c-style: b's non-membership caused by a partial
        dominator with probability 0.75 > alpha."""
        ds = UncertainDataset(
            [
                UncertainObject("b", [[4.0, 4.0], [4.4, 4.4]]),
                UncertainObject(
                    "a",
                    [[4.5, 4.5], [4.6, 4.6], [4.4, 4.6], [9.9, 0.1]],
                ),
            ]
        )
        q = [5.0, 5.0]
        probs = prsq_probabilities(ds, q, use_index=False)
        assert probs["b"] == pytest.approx(0.25)
        res = compute_causality(ds, "b", q, alpha=0.5)
        assert res.cause_ids() == ["a"]
        assert res.causes["a"].kind is CauseKind.COUNTERFACTUAL

    def test_alpha_one_all_candidates_are_causes(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("weak", [[2.6, 2.6], [9.0, 9.0]]),
                UncertainObject("strong", [[2.3, 2.3]]),
            ]
        )
        res = compute_causality(ds, "an", [3.0, 3.0], alpha=1.0)
        assert res.cause_ids() == ["strong", "weak"]
        assert res.responsibility("weak") == pytest.approx(0.5)
        assert res.responsibility("strong") == pytest.approx(0.5)

    def test_alpha_one_single_candidate_counterfactual(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("only", [[2.6, 2.6], [9.0, 9.0]]),
            ]
        )
        res = compute_causality(ds, "an", [3.0, 3.0], alpha=1.0)
        assert res.cause_ids() == ["only"]
        assert res.causes["only"].kind is CauseKind.COUNTERFACTUAL


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("alpha", [0.3, 0.6, 1.0])
    def test_random_instances(self, seed, alpha):
        rng = np.random.default_rng(seed)
        ds = make_uncertain_dataset(rng, n=6, dims=2)
        q = rng.uniform(0, 10, size=2)
        an = first_non_answer(ds, q, alpha)
        if an is None:
            pytest.skip("all answers in this draw")
        cp = compute_causality(ds, an, q, alpha)
        bf = brute_force_causality(ds, an, q, alpha)
        assert cp.same_causality(bf), (
            cp.responsibilities(),
            bf.responsibilities(),
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_witness_sets_are_valid_contingencies(self, seed):
        from repro.prsq.oracle import MembershipOracle

        rng = np.random.default_rng(seed + 50)
        ds = make_uncertain_dataset(rng, n=7, dims=2)
        q = rng.uniform(0, 10, size=2)
        an = first_non_answer(ds, q, 0.5)
        if an is None:
            pytest.skip("all answers in this draw")
        res = compute_causality(ds, an, q, 0.5)
        oracle = MembershipOracle(ds, an, q, 0.5)
        for oid, cause in res.causes.items():
            assert oracle.is_contingency_set(cause.contingency_set, oid)


class TestConfigurations:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_ablations_agree(self, seed):
        rng = np.random.default_rng(seed + 10)
        ds = make_uncertain_dataset(rng, n=8, dims=2)
        q = rng.uniform(0, 10, size=2)
        an = first_non_answer(ds, q, 0.5)
        if an is None:
            pytest.skip("all answers in this draw")
        reference = compute_causality(ds, an, q, 0.5)
        configs = [
            CPConfig(use_index=False),
            CPConfig(use_lemma4=False),
            CPConfig(use_lemma5=False),
            CPConfig(use_lemma6=False),
            CPConfig(use_bound_prune=False),
            CPConfig.naive_refinement(),
        ]
        for config in configs:
            alt = compute_causality(ds, an, q, 0.5, config=config)
            assert reference.same_causality(alt), config

    def test_stats_populated(self, rng):
        ds = make_uncertain_dataset(rng, n=20, dims=2)
        q = rng.uniform(0, 10, size=2)
        an = first_non_answer(ds, q, 0.5)
        if an is None:
            pytest.skip("all answers in this draw")
        res = compute_causality(ds, an, q, 0.5)
        assert res.stats.node_accesses > 0
        assert res.stats.cpu_time_s > 0
        assert res.stats.candidates >= len(res)

    def test_linear_scan_reports_zero_node_accesses(self, rng):
        ds = make_uncertain_dataset(rng, n=12, dims=2)
        q = rng.uniform(0, 10, size=2)
        an = first_non_answer(ds, q, 0.5)
        if an is None:
            pytest.skip("all answers in this draw")
        res = compute_causality(ds, an, q, 0.5, config=CPConfig(use_index=False))
        assert res.stats.node_accesses == 0


class TestPdfModel:
    def test_pdf_pipeline_runs(self):
        objects = [
            UniformBoxObject("an", Rect([4.0, 4.0], [4.6, 4.6])),
            UniformBoxObject("cause", Rect([4.4, 4.4], [4.8, 4.8])),
            TruncatedGaussianObject("far", Rect([9.0, 0.0], [9.8, 0.8])),
        ]
        result, dataset = compute_causality_pdf(
            objects, "an", [5.0, 5.0], alpha=0.5, samples_per_object=32
        )
        assert "cause" in result.cause_ids()
        assert "far" not in result.cause_ids()
        assert dataset.get("an").num_samples == 32

    def test_pdf_unknown_object_rejected(self):
        objects = [UniformBoxObject("an", Rect([0.0, 0.0], [1.0, 1.0]))]
        with pytest.raises(KeyError):
            compute_causality_pdf(objects, "nope", [5.0, 5.0], alpha=0.5)

    def test_pdf_matches_discrete_on_same_samples(self, rng):
        """Running CP directly on the discretized dataset (discrete filter)
        must agree with the pdf front-end (region filter)."""
        objects = [
            UniformBoxObject("an", Rect([4.0, 4.0], [4.6, 4.6])),
            UniformBoxObject("c1", Rect([4.3, 4.3], [4.9, 4.9])),
            UniformBoxObject("c2", Rect([4.5, 4.2], [5.0, 4.7])),
        ]
        pdf_result, dataset = compute_causality_pdf(
            objects, "an", [5.0, 5.0], alpha=0.5, samples_per_object=16,
            rng=np.random.default_rng(3),
        )
        discrete_result = compute_causality(dataset, "an", [5.0, 5.0], 0.5)
        assert pdf_result.same_causality(discrete_result)
