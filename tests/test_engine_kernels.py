"""Parity tests: vectorized engine kernels vs. scalar reference paths.

The engine may freely pick either implementation per session, so the two
paths must be *bit-compatible* — identical boolean masks and counts, not
merely approximately equal sets.
"""

import numpy as np
import pytest

from repro.engine import kernels
from repro.geometry.dominance import dynamically_dominates
from repro.geometry.rectangle import Rect
from repro.skyline.reverse import reverse_skyline, reverse_skyline_bruteforce
from repro.skyline.skyband import reverse_k_skyband
from repro.uncertain.dataset import CertainDataset


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def random_points(rng, n, d, scale=10.0):
    return rng.uniform(0.0, scale, size=(n, d))


class TestDominanceMask:
    @pytest.mark.parametrize("n,d", [(1, 2), (17, 2), (40, 3), (25, 4)])
    def test_numpy_matches_python(self, rng, n, d):
        for trial in range(5):
            points = random_points(rng, n, d)
            target = rng.uniform(0, 10, size=d)
            center = rng.uniform(0, 10, size=d)
            fast = kernels.dominance_mask(points, target, center, use_numpy=True)
            slow = kernels.dominance_mask(points, target, center, use_numpy=False)
            np.testing.assert_array_equal(fast, slow)

    def test_matches_scalar_predicate(self, rng):
        points = random_points(rng, 30, 2)
        target = np.array([5.0, 5.0])
        center = np.array([4.0, 6.0])
        mask = kernels.dominance_mask(points, target, center)
        for k in range(points.shape[0]):
            assert mask[k] == dynamically_dominates(points[k], target, center)

    def test_boundary_ties_identical(self):
        # Mirror points tie q's distance exactly: never dominating, and both
        # paths must agree on the exact comparison.
        center = np.array([4.0, 4.0])
        target = np.array([5.0, 5.0])
        points = np.array([[3.0, 3.0], [3.0, 4.5], [5.0, 3.0], [4.0, 4.0]])
        fast = kernels.dominance_mask(points, target, center, use_numpy=True)
        slow = kernels.dominance_mask(points, target, center, use_numpy=False)
        np.testing.assert_array_equal(fast, slow)
        assert fast.tolist() == [False, True, False, True]


class TestDominatorCounts:
    @pytest.mark.parametrize("n,d", [(2, 2), (50, 2), (200, 3)])
    def test_numpy_matches_python(self, rng, n, d):
        points = random_points(rng, n, d)
        q = rng.uniform(0, 10, size=d)
        fast = kernels.dominator_counts(points, q, use_numpy=True)
        slow = kernels.dominator_counts(points, q, use_numpy=False)
        np.testing.assert_array_equal(fast, slow)

    def test_chunking_invariant(self, rng, monkeypatch):
        points = random_points(rng, 150, 2)
        q = rng.uniform(0, 10, size=2)
        whole = kernels.dominator_counts(points, q, use_numpy=True)
        monkeypatch.setattr(kernels, "_CENTER_CHUNK", 7)
        chunked = kernels.dominator_counts(points, q, use_numpy=True)
        np.testing.assert_array_equal(whole, chunked)

    def test_duplicate_points_dominate_each_other(self):
        points = np.array([[4.0, 4.0], [4.0, 4.0], [9.0, 9.0]])
        q = np.array([5.0, 5.0])
        counts = kernels.dominator_counts(points, q)
        # Each twin sits at distance zero from the other: both blocked.
        assert counts.tolist()[:2] == [1, 1]


class TestReverseSkylineParity:
    @pytest.mark.parametrize("n,d", [(30, 2), (120, 2), (60, 3)])
    def test_kernel_matches_index_path_and_bruteforce(self, rng, n, d):
        points = random_points(rng, n, d, scale=100.0)
        dataset = CertainDataset(points)
        q = rng.uniform(0, 100, size=d)
        mask = kernels.reverse_skyline_mask(points, q, use_numpy=True)
        ids = dataset.ids()
        from_kernel = [ids[i] for i in range(n) if mask[i]]
        assert from_kernel == reverse_skyline(dataset, q)
        assert from_kernel == reverse_skyline_bruteforce(dataset, q)

    def test_python_fallback_identical(self, rng):
        points = random_points(rng, 40, 2)
        q = rng.uniform(0, 10, size=2)
        np.testing.assert_array_equal(
            kernels.reverse_skyline_mask(points, q, use_numpy=True),
            kernels.reverse_skyline_mask(points, q, use_numpy=False),
        )


class TestKSkybandParity:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_kernel_matches_library(self, rng, k):
        points = random_points(rng, 80, 2, scale=100.0)
        dataset = CertainDataset(points)
        q = rng.uniform(0, 100, size=2)
        mask = kernels.k_skyband_mask(points, q, k, use_numpy=True)
        ids = dataset.ids()
        from_kernel = [ids[i] for i in range(len(ids)) if mask[i]]
        assert from_kernel == reverse_k_skyband(dataset, q, k)

    def test_k1_is_reverse_skyline(self, rng):
        points = random_points(rng, 50, 2)
        q = rng.uniform(0, 10, size=2)
        np.testing.assert_array_equal(
            kernels.k_skyband_mask(points, q, 1),
            kernels.reverse_skyline_mask(points, q),
        )

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            kernels.k_skyband_mask(random_points(rng, 5, 2), [1.0, 1.0], 0)


class TestWindowKernels:
    def test_points_in_any_window_parity(self, rng):
        points = random_points(rng, 100, 2)
        windows = [
            Rect(rng.uniform(0, 4, 2), rng.uniform(6, 10, 2)) for _ in range(5)
        ]
        fast = kernels.points_in_any_window(points, windows, use_numpy=True)
        slow = kernels.points_in_any_window(points, windows, use_numpy=False)
        np.testing.assert_array_equal(fast, slow)
        for i in range(points.shape[0]):
            assert fast[i] == any(w.contains_point(points[i]) for w in windows)

    def test_empty_windows(self, rng):
        points = random_points(rng, 10, 2)
        assert not kernels.points_in_any_window(points, []).any()

    def test_window_chunking_invariant(self, rng, monkeypatch):
        """Chunking over windows must not change the containment mask.

        (The kernel once materialized one unchunked (n, m, d) broadcast; a
        center with many samples — many windows — could blow up scratch.)
        """
        points = random_points(rng, 60, 2)
        windows = [
            Rect(lo, lo + rng.uniform(0.5, 3.0, 2))
            for lo in rng.uniform(0, 8, size=(23, 2))
        ]
        whole = kernels.points_in_any_window(points, windows)
        monkeypatch.setattr(kernels, "_WINDOW_CHUNK", 4)
        chunked = kernels.points_in_any_window(points, windows)
        np.testing.assert_array_equal(whole, chunked)
