"""Property-based wire round-trips for every registered spec and envelope.

Two invariants, checked through a *real* ``json.dumps``/``json.loads``
cycle (not just an in-memory dict):

* ``spec_from_dict(spec_to_dict(spec)) == spec`` for every registered
  query family;
* ``QueryResult.from_dict(env.to_dict()) == env`` and re-serialization is
  byte-identical, for every result-envelope family.

A coverage guard fails this module whenever a new family lands in the
registry without a strategy here, so the round-trip property stays
exhaustive by construction.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import QueryResult, REGISTRY
from repro.api.results import (
    CausalityAnswer,
    CauseRecord,
    ErrorInfo,
    PRSQResult,
    ReverseKSkybandResult,
    ReverseSkylineResult,
    ReverseTopKResult,
    RunInfo,
    StatsRecord,
    UpdateResult,
)
from repro.core.cp import CPConfig
from repro.engine.spec import (
    CausalityCertainSpec,
    CausalitySpec,
    KSkybandCausalitySpec,
    PdfCausalitySpec,
    PRSQSpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    UpdateSpec,
    spec_from_dict,
    spec_to_dict,
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
coords = st.tuples(finite, finite)
alphas = st.floats(min_value=0.0, max_value=1.0, exclude_min=True)
ks = st.integers(min_value=1, max_value=9)
oids = st.one_of(
    st.integers(),
    st.text(max_size=12),
    st.tuples(st.text(max_size=6), st.integers()),
)
configs = st.builds(
    CPConfig,
    use_index=st.booleans(),
    use_lemma4=st.booleans(),
    use_lemma5=st.booleans(),
    use_lemma6=st.booleans(),
    use_bound_prune=st.booleans(),
)

_entry_samples = st.lists(
    st.lists(finite, min_size=1, max_size=3).map(tuple),
    min_size=1,
    max_size=3,
).map(tuple)
_entry_probabilities = st.one_of(
    st.none(),
    st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=3
    ).map(tuple),
)
_entry_names = st.one_of(st.none(), st.text(max_size=8))


@st.composite
def _update_specs(draw):
    """Non-empty update specs with op-disjoint ids (the spec invariant)."""
    ids = draw(st.lists(oids, min_size=1, max_size=5, unique=True))
    deletes, updates, inserts = [], [], []
    for oid in ids:
        op = draw(st.sampled_from(["delete", "update", "insert"]))
        if op == "delete":
            deletes.append(oid)
        else:
            entry = (
                oid,
                draw(_entry_samples),
                draw(_entry_probabilities),
                draw(_entry_names),
            )
            (updates if op == "update" else inserts).append(entry)
    return UpdateSpec(
        deletes=tuple(deletes), updates=tuple(updates), inserts=tuple(inserts)
    )


SPEC_STRATEGIES = {
    "update": _update_specs(),
    "prsq": st.builds(
        PRSQSpec,
        q=coords,
        alpha=alphas,
        want=st.sampled_from(["answers", "non_answers", "probabilities"]),
    ),
    "causality": st.builds(
        CausalitySpec, an=oids, q=coords, alpha=alphas, config=configs
    ),
    "pdf_causality": st.builds(
        PdfCausalitySpec, an=oids, q=coords, alpha=alphas, config=configs
    ),
    "causality_certain": st.builds(CausalityCertainSpec, an=oids, q=coords),
    "k_skyband_causality": st.builds(
        KSkybandCausalitySpec, an=oids, q=coords, k=ks
    ),
    "reverse_skyline": st.builds(ReverseSkylineSpec, q=coords),
    "reverse_k_skyband": st.builds(ReverseKSkybandSpec, q=coords, k=ks),
    "reverse_top_k": st.builds(
        ReverseTopKSpec,
        q=coords,
        k=ks,
        weights=st.lists(coords, min_size=1, max_size=4).map(tuple),
        # composite (tuple) ids included: they must survive the round trip
        user_ids=st.one_of(
            st.none(), st.lists(oids, min_size=1, max_size=4).map(tuple)
        ),
    ),
}


def _cause_records(draw_ids):
    """Consistent CauseRecords: responsibility == 1 / (1 + |Γ|)."""

    def build(pair):
        oid, contingency = pair
        contingency = tuple(sorted(set(contingency) - {oid}, key=repr))
        responsibility = 1.0 / (1.0 + len(contingency))
        kind = "counterfactual" if not contingency else "actual"
        return CauseRecord(
            id=oid,
            responsibility=responsibility,
            kind=kind,
            contingency_set=contingency,
        )

    return st.tuples(draw_ids, st.lists(draw_ids, max_size=3)).map(build)


stats_records = st.builds(
    StatsRecord,
    node_accesses=st.integers(min_value=0, max_value=10_000),
    cpu_time_s=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    candidates=st.integers(min_value=0, max_value=1000),
    oracle_evaluations=st.integers(min_value=0, max_value=1000),
    subsets_examined=st.integers(min_value=0, max_value=1000),
)

@st.composite
def _causality_answers(draw):
    an = draw(oids)
    records = draw(st.lists(_cause_records(oids), max_size=4))
    # unique cause ids, none equal to the non-answer, deterministic order —
    # exactly the shape CausalityAnswer.from_raw produces
    unique = {r.id: r for r in records if r.id != an}
    causes = tuple(sorted(unique.values(), key=lambda r: repr(r.id)))
    return CausalityAnswer(
        an=an,
        alpha=draw(st.one_of(st.none(), alphas)),
        causes=causes,
        stats=draw(stats_records),
    )


causality_answers = _causality_answers()

RESULT_STRATEGIES = {
    "prsq": st.one_of(
        st.builds(
            PRSQResult,
            want=st.sampled_from(["answers", "non_answers"]),
            alpha=alphas,
            ids=st.lists(oids, max_size=6).map(tuple),
            probabilities=st.none(),
        ),
        st.builds(
            PRSQResult,
            want=st.just("probabilities"),
            alpha=alphas,
            ids=st.none(),
            probabilities=st.dictionaries(
                oids, st.floats(min_value=0.0, max_value=1.0), max_size=6
            ),
        ),
    ),
    "causality": causality_answers,
    "pdf_causality": causality_answers,
    "causality_certain": causality_answers,
    "k_skyband_causality": causality_answers,
    "reverse_skyline": st.builds(
        ReverseSkylineResult, ids=st.lists(oids, max_size=6).map(tuple)
    ),
    "reverse_k_skyband": st.builds(
        ReverseKSkybandResult, k=ks, ids=st.lists(oids, max_size=6).map(tuple)
    ),
    "reverse_top_k": st.builds(
        ReverseTopKResult, k=ks, user_ids=st.lists(oids, max_size=6).map(tuple)
    ),
    "update": st.builds(
        UpdateResult,
        version=st.integers(min_value=0, max_value=1_000),
        n_objects=st.integers(min_value=1, max_value=10_000),
        deleted=st.integers(min_value=0, max_value=100),
        updated=st.integers(min_value=0, max_value=100),
        inserted=st.integers(min_value=0, max_value=100),
        previous_fingerprint=st.one_of(st.none(), st.text(min_size=4, max_size=40)),
        fingerprint=st.one_of(st.none(), st.text(min_size=4, max_size=40)),
    ),
}


def test_every_registered_family_has_strategies():
    """New registry entries must extend the round-trip property coverage."""
    kinds = set(REGISTRY.kinds())
    assert kinds == set(SPEC_STRATEGIES), (
        "spec strategy coverage out of sync with the registry"
    )
    assert kinds == set(RESULT_STRATEGIES), (
        "result strategy coverage out of sync with the registry"
    )
    for kind in kinds:
        family = REGISTRY.family(kind)
        assert family.spec_cls.kind == kind
        assert hasattr(family.result_cls, "from_dict")
        assert hasattr(family.result_cls, "to_raw")


@pytest.mark.parametrize("kind", sorted(SPEC_STRATEGIES))
def test_spec_roundtrip_through_json(kind):
    @settings(max_examples=40, deadline=None)
    @given(spec=SPEC_STRATEGIES[kind])
    def check(spec):
        payload = spec_to_dict(spec)
        wire = json.dumps(payload)
        assert spec_from_dict(json.loads(wire)) == spec
        assert json.dumps(spec_to_dict(spec_from_dict(json.loads(wire)))) == wire

    check()


@pytest.mark.parametrize("kind", sorted(RESULT_STRATEGIES))
def test_envelope_roundtrip_through_json(kind):
    @settings(max_examples=40, deadline=None)
    @given(
        spec=SPEC_STRATEGIES[kind],
        value=RESULT_STRATEGIES[kind],
        run=st.builds(
            RunInfo,
            cached=st.booleans(),
            elapsed_s=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            node_accesses=st.one_of(
                st.none(), st.integers(min_value=0, max_value=10_000)
            ),
        ),
        fingerprint=st.one_of(st.none(), st.text(min_size=4, max_size=40)),
    )
    def check(spec, value, run, fingerprint):
        env = QueryResult(
            spec=spec, value=value, run=run, fingerprint=fingerprint
        )
        wire = json.dumps(env.to_dict())
        back = QueryResult.from_dict(json.loads(wire))
        assert back == env
        assert json.dumps(back.to_dict()) == wire

    check()


@settings(max_examples=40, deadline=None)
@given(
    spec=SPEC_STRATEGIES["causality"],
    code=st.sampled_from(
        ["unknown_object", "not_a_non_answer", "invalid_value", "internal_error"]
    ),
    message=st.text(max_size=60),
)
def test_error_envelope_roundtrip(spec, code, message):
    env = QueryResult(
        spec=spec,
        value=None,
        error=ErrorInfo(code=code, type="SomeError", message=message),
    )
    wire = json.dumps(env.to_dict())
    back = QueryResult.from_dict(json.loads(wire))
    assert back == env and not back.ok


@settings(max_examples=25, deadline=None)
@given(answer=causality_answers)
def test_causality_answer_raw_roundtrip(answer):
    """to_raw() rebuilds a valid CausalityResult; from_raw inverts it."""
    raw = answer.to_raw()
    assert CausalityAnswer.from_raw(raw) == answer


def test_unsupported_schema_version_rejected():
    env = QueryResult(
        spec=PRSQSpec(q=(1.0, 2.0), alpha=0.5),
        value=PRSQResult(want="answers", alpha=0.5, ids=()),
    )
    payload = env.to_dict()
    payload["schema_version"] = 99
    with pytest.raises(ValueError, match="schema_version"):
        QueryResult.from_dict(payload)
