"""Unit tests for the R-tree index."""

import numpy as np
import pytest

from repro.exceptions import IndexError_
from repro.geometry.rectangle import Rect
from repro.index.rtree import RTree, fanout_for_page


def linear_range(items, window):
    return sorted(
        payload for rect, payload in items if window.intersects(rect)
    )


def build_items(rng, n, dims=2):
    pts = rng.uniform(0, 100, size=(n, dims))
    sizes = rng.uniform(0, 3, size=(n, dims))
    return [
        (Rect(pts[i], pts[i] + sizes[i]), i)
        for i in range(n)
    ]


class TestFanout:
    def test_page_size_determines_capacity(self):
        assert fanout_for_page(4096, 2) == 4096 // (2 * 2 * 8 + 8)

    def test_minimum_capacity(self):
        assert fanout_for_page(64, 10) == 4


class TestInsertion:
    def test_empty_tree(self):
        tree = RTree(dims=2)
        assert len(tree) == 0
        assert tree.range_search(Rect([0, 0], [1, 1])) == []

    def test_single_insert(self):
        tree = RTree(dims=2)
        tree.insert([1.0, 1.0], "x")
        assert tree.range_search(Rect([0, 0], [2, 2])) == ["x"]

    def test_point_payloads_boxed(self):
        tree = RTree(dims=2)
        tree.insert([3.0, 3.0], 7)
        assert tree.range_search(Rect([3, 3], [3, 3])) == [7]

    def test_wrong_dims_rejected(self):
        tree = RTree(dims=2)
        with pytest.raises(Exception):
            tree.insert([1.0, 2.0, 3.0], "bad")

    def test_grows_and_stays_valid(self, rng):
        tree = RTree(dims=2, max_entries=4)
        items = build_items(rng, 200)
        for rect, payload in items:
            tree.insert(rect, payload)
        tree.validate()
        assert len(tree) == 200
        assert tree.height() > 1

    def test_validate_catches_corruption(self, rng):
        tree = RTree(dims=2, max_entries=4)
        for rect, payload in build_items(rng, 50):
            tree.insert(rect, payload)
        tree.size += 1  # corrupt the bookkeeping
        with pytest.raises(IndexError_):
            tree.validate()


class TestRangeSearch:
    @pytest.mark.parametrize("n", [1, 10, 100, 500])
    def test_matches_linear_scan(self, rng, n):
        tree = RTree(dims=2, max_entries=6)
        items = build_items(rng, n)
        for rect, payload in items:
            tree.insert(rect, payload)
        for _ in range(20):
            lo = rng.uniform(0, 90, size=2)
            window = Rect(lo, lo + rng.uniform(1, 30, size=2))
            assert sorted(tree.range_search(window)) == linear_range(items, window)

    def test_range_entries_returns_rects(self, rng):
        tree = RTree(dims=2, max_entries=4)
        items = build_items(rng, 40)
        for rect, payload in items:
            tree.insert(rect, payload)
        window = Rect([0, 0], [100, 100])
        entries = tree.range_entries(window)
        assert len(entries) == 40
        assert all(isinstance(rect, Rect) for rect, _p in entries)

    def test_range_search_any_union_semantics(self, rng):
        tree = RTree(dims=2, max_entries=4)
        items = build_items(rng, 120)
        for rect, payload in items:
            tree.insert(rect, payload)
        windows = [Rect([0, 0], [20, 20]), Rect([50, 50], [70, 70])]
        expected = set(linear_range(items, windows[0])) | set(
            linear_range(items, windows[1])
        )
        got = tree.range_search_any(windows)
        assert sorted(set(got)) == sorted(expected)
        assert len(got) == len(set(got))  # each entry reported once

    def test_traverse_if_predicate(self, rng):
        tree = RTree(dims=2, max_entries=4)
        items = build_items(rng, 60)
        for rect, payload in items:
            tree.insert(rect, payload)
        window = Rect([10, 10], [40, 40])
        via_traverse = sorted(
            p for _r, p in tree.traverse_if(window.intersects)
        )
        assert via_traverse == linear_range(items, window)

    def test_all_payloads(self, rng):
        tree = RTree(dims=3, max_entries=5)
        for rect, payload in build_items(rng, 30, dims=3):
            tree.insert(rect, payload)
        assert sorted(tree.all_payloads()) == list(range(30))


class TestAccessAccounting:
    def test_counts_increase_with_queries(self, rng):
        tree = RTree(dims=2, max_entries=4)
        for rect, payload in build_items(rng, 100):
            tree.insert(rect, payload)
        tree.stats.reset()
        tree.range_search(Rect([0, 0], [100, 100]))
        full_scan = tree.stats.node_accesses
        assert full_scan == tree.node_count()
        tree.stats.reset()
        tree.range_search(Rect([0, 0], [1, 1]))
        assert 0 < tree.stats.node_accesses <= full_scan

    def test_measure_context(self, rng):
        tree = RTree(dims=2, max_entries=4)
        for rect, payload in build_items(rng, 50):
            tree.insert(rect, payload)
        with tree.stats.measure() as snap:
            tree.range_search(Rect([0, 0], [100, 100]))
        assert snap.node_accesses > 0
        assert snap.queries == 1

    def test_leaf_accesses_subset_of_nodes(self, rng):
        tree = RTree(dims=2, max_entries=4)
        for rect, payload in build_items(rng, 80):
            tree.insert(rect, payload)
        tree.stats.reset()
        tree.range_search(Rect([0, 0], [100, 100]))
        assert tree.stats.leaf_accesses <= tree.stats.node_accesses
