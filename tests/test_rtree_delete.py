"""Unit tests for R-tree deletion (CondenseTree path)."""

import numpy as np
import pytest

from repro.geometry.rectangle import Rect
from repro.index.rtree import RTree


def build_tree(rng, n, max_entries=4):
    pts = rng.uniform(0, 100, size=(n, 2))
    tree = RTree(dims=2, max_entries=max_entries)
    items = []
    for i in range(n):
        rect = Rect.from_point(pts[i])
        tree.insert(rect, i)
        items.append((rect, i))
    return tree, items


class TestDelete:
    def test_delete_existing_entry(self, rng):
        tree, items = build_tree(rng, 30)
        rect, payload = items[7]
        assert tree.delete(rect, payload)
        assert len(tree) == 29
        assert payload not in tree.all_payloads()

    def test_delete_missing_entry_returns_false(self, rng):
        tree, _items = build_tree(rng, 10)
        assert not tree.delete([200.0, 200.0], "nope")
        assert len(tree) == 10

    def test_delete_accepts_raw_point(self, rng):
        tree = RTree(dims=2)
        tree.insert([1.0, 2.0], "x")
        assert tree.delete([1.0, 2.0], "x")
        assert len(tree) == 0

    def test_delete_all_entries(self, rng):
        tree, items = build_tree(rng, 40)
        for rect, payload in items:
            assert tree.delete(rect, payload)
        assert len(tree) == 0
        assert tree.all_payloads() == []
        assert tree.range_search(Rect([0, 0], [100, 100])) == []

    def test_structure_valid_after_random_deletions(self, rng):
        tree, items = build_tree(rng, 120)
        order = rng.permutation(len(items))
        for idx in order[:80]:
            rect, payload = items[int(idx)]
            assert tree.delete(rect, payload)
            tree.validate(allow_underfull=True)
        remaining = {items[int(i)][1] for i in order[80:]}
        assert set(tree.all_payloads()) == remaining

    def test_queries_correct_after_deletions(self, rng):
        tree, items = build_tree(rng, 100)
        removed = set()
        for rect, payload in items[:50]:
            tree.delete(rect, payload)
            removed.add(payload)
        for _ in range(10):
            lo = rng.uniform(0, 90, size=2)
            window = Rect(lo, lo + rng.uniform(5, 30, size=2))
            expected = sorted(
                payload
                for rect, payload in items
                if payload not in removed and window.intersects(rect)
            )
            assert sorted(tree.range_search(window)) == expected

    def test_root_collapse(self, rng):
        tree, items = build_tree(rng, 60)
        assert tree.height() > 1
        for rect, payload in items[:-2]:
            tree.delete(rect, payload)
        assert tree.height() == 1
        assert len(tree) == 2

    def test_interleaved_insert_delete(self, rng):
        tree = RTree(dims=2, max_entries=4)
        alive = {}
        next_id = 0
        for _round in range(200):
            if alive and rng.random() < 0.4:
                victim = int(rng.choice(list(alive)))
                rect = alive.pop(victim)
                assert tree.delete(rect, victim)
            else:
                rect = Rect.from_point(rng.uniform(0, 100, size=2))
                tree.insert(rect, next_id)
                alive[next_id] = rect
                next_id += 1
        assert len(tree) == len(alive)
        assert sorted(tree.all_payloads()) == sorted(alive)
        tree.validate(allow_underfull=True)
