"""Unit tests for best-first kNN on the R-tree."""

import numpy as np
import pytest

from repro.index.bulk import bulk_load
from repro.index.knn import k_nearest, nearest
from repro.index.rtree import RTree


def point_tree(points, max_entries=6):
    return bulk_load(
        [(np.asarray(p, dtype=float), i) for i, p in enumerate(points)],
        dims=len(points[0]),
        max_entries=max_entries,
    )


def linear_knn(points, target, k):
    d2 = ((np.asarray(points) - np.asarray(target)) ** 2).sum(axis=1)
    order = np.argsort(d2, kind="stable")[:k]
    return [(float(d2[i]), int(i)) for i in order]


class TestKNearest:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_matches_linear_scan(self, rng, k):
        points = rng.uniform(0, 100, size=(200, 2))
        tree = point_tree(points)
        target = rng.uniform(0, 100, size=2)
        got = k_nearest(tree, target, k)
        expected = linear_knn(points, target, k)
        assert [round(d, 9) for d, _p in got] == [
            round(d, 9) for d, _p in expected
        ]

    def test_fewer_entries_than_k(self):
        tree = point_tree([[1.0, 1.0], [2.0, 2.0]])
        assert len(k_nearest(tree, [0.0, 0.0], 10)) == 2

    def test_empty_tree(self):
        tree = RTree(dims=2)
        assert k_nearest(tree, [0.0, 0.0], 3) == []
        assert nearest(tree, [0.0, 0.0]) is None

    def test_nearest_single(self, rng):
        points = rng.uniform(0, 100, size=(50, 3))
        tree = point_tree(points.tolist())
        target = rng.uniform(0, 100, size=3)
        expected = linear_knn(points, target, 1)[0][1]
        assert nearest(tree, target) == expected

    def test_invalid_k(self):
        tree = point_tree([[1.0, 1.0]])
        with pytest.raises(ValueError):
            k_nearest(tree, [0.0, 0.0], 0)

    def test_pruning_beats_full_scan(self, rng):
        points = rng.uniform(0, 100, size=(3000, 2))
        tree = point_tree(points, max_entries=16)
        tree.stats.reset()
        k_nearest(tree, [50.0, 50.0], 3)
        assert tree.stats.node_accesses < tree.node_count()

    def test_results_sorted_ascending(self, rng):
        points = rng.uniform(0, 100, size=(100, 2))
        tree = point_tree(points)
        result = k_nearest(tree, [10.0, 10.0], 20)
        distances = [d for d, _p in result]
        assert distances == sorted(distances)
