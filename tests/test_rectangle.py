"""Unit tests for repro.geometry.rectangle."""

import numpy as np
import pytest

from repro.geometry.rectangle import Rect


@pytest.fixture
def unit_square():
    return Rect([0.0, 0.0], [1.0, 1.0])


class TestConstruction:
    def test_inverted_corners_rejected(self):
        with pytest.raises(ValueError):
            Rect([1.0, 0.0], [0.0, 1.0])

    def test_from_point_is_degenerate(self):
        r = Rect.from_point([2.0, 3.0])
        assert r.area() == 0.0
        assert r.contains_point([2.0, 3.0])

    def test_from_center(self):
        r = Rect.from_center([5.0, 5.0], [1.0, 2.0])
        assert r.lo.tolist() == [4.0, 3.0]
        assert r.hi.tolist() == [6.0, 7.0]

    def test_from_center_negative_half_extent_taken_absolute(self):
        r = Rect.from_center([0.0], [-2.0])
        assert r.lo.tolist() == [-2.0]
        assert r.hi.tolist() == [2.0]

    def test_bounding(self):
        r = Rect.bounding([[0.0, 5.0], [2.0, 1.0], [1.0, 3.0]])
        assert r.lo.tolist() == [0.0, 1.0]
        assert r.hi.tolist() == [2.0, 5.0]

    def test_bounding_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_union_all(self):
        r = Rect.union_all([Rect([0, 0], [1, 1]), Rect([2, -1], [3, 0.5])])
        assert r.lo.tolist() == [0.0, -1.0]
        assert r.hi.tolist() == [3.0, 1.0]

    def test_union_all_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.union_all([])

    def test_immutability(self, unit_square):
        with pytest.raises(ValueError):
            unit_square.lo[0] = 5.0


class TestMeasures:
    def test_area(self):
        assert Rect([0, 0], [2, 3]).area() == 6.0

    def test_margin(self):
        assert Rect([0, 0], [2, 3]).margin() == 5.0

    def test_center(self):
        assert Rect([0, 0], [2, 4]).center.tolist() == [1.0, 2.0]

    def test_extents(self):
        assert Rect([1, 1], [2, 4]).extents.tolist() == [1.0, 3.0]


class TestPredicates:
    def test_contains_point_interior(self, unit_square):
        assert unit_square.contains_point([0.5, 0.5])

    def test_contains_point_boundary(self, unit_square):
        assert unit_square.contains_point([0.0, 1.0])

    def test_contains_point_outside(self, unit_square):
        assert not unit_square.contains_point([1.5, 0.5])

    def test_contains_points_vectorized(self, unit_square):
        pts = np.array([[0.5, 0.5], [2.0, 0.5], [1.0, 1.0]])
        assert unit_square.contains_points(pts).tolist() == [True, False, True]

    def test_contains_rect(self, unit_square):
        assert unit_square.contains_rect(Rect([0.2, 0.2], [0.8, 0.8]))
        assert not unit_square.contains_rect(Rect([0.5, 0.5], [1.5, 0.9]))

    def test_intersects_overlapping(self, unit_square):
        assert unit_square.intersects(Rect([0.5, 0.5], [2.0, 2.0]))

    def test_intersects_touching_edge(self, unit_square):
        assert unit_square.intersects(Rect([1.0, 0.0], [2.0, 1.0]))

    def test_intersects_disjoint(self, unit_square):
        assert not unit_square.intersects(Rect([1.1, 1.1], [2.0, 2.0]))


class TestCombinators:
    def test_union(self, unit_square):
        u = unit_square.union(Rect([2, 2], [3, 3]))
        assert u.lo.tolist() == [0.0, 0.0]
        assert u.hi.tolist() == [3.0, 3.0]

    def test_intersection(self, unit_square):
        inter = unit_square.intersection(Rect([0.5, -1.0], [2.0, 0.5]))
        assert inter is not None
        assert inter.lo.tolist() == [0.5, 0.0]
        assert inter.hi.tolist() == [1.0, 0.5]

    def test_intersection_disjoint_is_none(self, unit_square):
        assert unit_square.intersection(Rect([2, 2], [3, 3])) is None

    def test_overlap_area(self, unit_square):
        assert unit_square.overlap_area(Rect([0.5, 0.5], [2, 2])) == 0.25
        assert unit_square.overlap_area(Rect([5, 5], [6, 6])) == 0.0

    def test_enlargement(self, unit_square):
        assert unit_square.enlargement(unit_square) == 0.0
        assert unit_square.enlargement(Rect([0, 0], [2, 1])) == pytest.approx(1.0)

    def test_expanded_to_point(self, unit_square):
        r = unit_square.expanded_to_point([2.0, -1.0])
        assert r.lo.tolist() == [0.0, -1.0]
        assert r.hi.tolist() == [2.0, 1.0]


class TestDistancesAndCorners:
    def test_min_distance_sq_inside_is_zero(self, unit_square):
        assert unit_square.min_distance_sq([0.5, 0.5]) == 0.0

    def test_min_distance_sq_outside(self, unit_square):
        assert unit_square.min_distance_sq([2.0, 0.5]) == pytest.approx(1.0)

    def test_farthest_corner(self, unit_square):
        assert unit_square.farthest_corner([0.0, 0.0]).tolist() == [1.0, 1.0]

    def test_nearest_corner(self, unit_square):
        assert unit_square.nearest_corner([0.1, 0.9]).tolist() == [0.0, 1.0]

    def test_corners_count(self):
        r = Rect([0, 0, 0], [1, 1, 1])
        corners = r.corners()
        assert corners.shape == (8, 3)
        assert {tuple(c) for c in corners.tolist()} == {
            (x, y, z) for x in (0.0, 1.0) for y in (0.0, 1.0) for z in (0.0, 1.0)
        }


class TestDunder:
    def test_equality_and_hash(self, unit_square):
        twin = Rect([0.0, 0.0], [1.0, 1.0])
        assert unit_square == twin
        assert hash(unit_square) == hash(twin)

    def test_inequality(self, unit_square):
        assert unit_square != Rect([0.0, 0.0], [1.0, 2.0])

    def test_repr_mentions_corners(self, unit_square):
        assert "lo=" in repr(unit_square) and "hi=" in repr(unit_square)
