"""The seeded chaos suite: 52 generated fault schedules, end to end.

Each serve scenario boots a real in-process server with a generated
:class:`FaultPlan`, drives a mixed read/mutation/batch workload through a
retrying client, and asserts the three resilience invariants (exactly one
response per request, exactly-once retried mutations, successful reads
bit-identical to a fault-free replay).  Executor scenarios cover the
``worker.chunk`` seam with real SIGKILLs against the process pool.

A failing seed prints its full schedule — `FaultPlan.from_dict` on that
output reproduces the run exactly.
"""

import pytest

from repro.faults.chaos import (
    SERVE_SEAMS,
    run_executor_chaos,
    run_serve_chaos,
)
from repro.faults.plan import SEAMS, FaultPlan

SERVE_SEEDS = list(range(42))
EXECUTOR_SEEDS = list(range(10))


def _fail(report):
    raise AssertionError(
        f"chaos seed {report['seed']} violated: {report['failures']}; "
        f"schedule={report['plan']}"
    )


@pytest.mark.parametrize("seed", SERVE_SEEDS)
def test_serve_chaos_seed(seed):
    report = run_serve_chaos(seed)
    if not report["ok"]:
        _fail(report)


@pytest.mark.parametrize("seed", EXECUTOR_SEEDS)
def test_executor_chaos_seed(seed):
    report = run_executor_chaos(seed)
    if not report["ok"]:
        _fail(report)


def test_suite_spans_all_five_seams():
    """The 52 schedules collectively include rules on every seam."""
    covered = set()
    for seed in SERVE_SEEDS:
        covered.update(FaultPlan.generate(seed, seams=SERVE_SEAMS).seams())
    for seed in EXECUTOR_SEEDS:
        covered.update(
            FaultPlan.generate(seed, seams=("worker.chunk",)).seams()
        )
    assert covered == set(SEAMS)
    assert len(SERVE_SEEDS) + len(EXECUTOR_SEEDS) >= 50
