"""Unit tests for the explanation / repair module."""

import numpy as np
import pytest

from repro.core.cp import compute_causality
from repro.core.cr import compute_causality_certain
from repro.core.explain import (
    explain_with_oracle,
    minimal_repair_set,
    narrative,
    responsibility_groups,
    verify_repair,
    what_if,
)
from repro.core.model import CausalityResult
from repro.prsq.query import prsq_non_answers
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject
from tests.conftest import make_uncertain_dataset


@pytest.fixture
def explained(rng):
    """A (dataset, q, alpha, result) tuple for some non-answer."""
    for seed in range(50):
        local = np.random.default_rng(seed)
        ds = make_uncertain_dataset(local, n=8, dims=2)
        q = local.uniform(0, 10, size=2)
        nas = prsq_non_answers(ds, q, 0.5, use_index=False)
        if nas:
            result = compute_causality(ds, nas[0], q, 0.5)
            if result.causes:
                return ds, q, 0.5, result
    pytest.skip("no suitable instance found")


class TestMinimalRepair:
    def test_repair_flips_membership(self, explained):
        ds, q, _alpha, result = explained
        assert verify_repair(ds, result, q)

    def test_repair_size_matches_best_responsibility(self, explained):
        _ds, _q, _alpha, result = explained
        repair = minimal_repair_set(result)
        best = max(c.responsibility for c in result.causes.values())
        assert len(repair) == int(round(1.0 / best))

    def test_repair_is_minimal(self, explained):
        """No strictly smaller deletion set flips membership."""
        import itertools

        ds, q, alpha, result = explained
        repair = minimal_repair_set(result)
        if len(repair) > 3 or len(result.causes) > 8:
            pytest.skip("exhaustive minimality check too large")
        universe = list(result.causes)
        for size in range(len(repair)):
            for combo in itertools.combinations(universe, size):
                assert not verify_repair(ds, result, q, repair=combo)

    def test_empty_result_rejected(self):
        empty = CausalityResult(an_oid="x", alpha=0.5)
        with pytest.raises(ValueError):
            minimal_repair_set(empty)

    def test_certain_result_needs_alpha_for_verification(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(8, 2)))
        q = rng.uniform(0, 10, size=2)
        from repro.skyline.reverse import reverse_skyline

        members = set(reverse_skyline(ds, q))
        non_answers = [oid for oid in ds.ids() if oid not in members]
        if not non_answers:
            pytest.skip("no non-answers")
        result = compute_causality_certain(ds, non_answers[0], q)
        with pytest.raises(ValueError):
            verify_repair(ds, result, q)


class TestWhatIf:
    def test_removing_nothing_keeps_probability(self, explained):
        ds, q, alpha, result = explained
        assert what_if(ds, result, q, []) < alpha

    def test_removing_all_causes_reaches_one(self, explained):
        ds, q, _alpha, result = explained
        # All candidate causes include every influencer only when all are
        # causes; removing causes + repair always flips, so check repair.
        assert what_if(ds, result, q, minimal_repair_set(result)) >= result.alpha


class TestNarrative:
    def test_mentions_an_and_repair(self, explained):
        ds, q, _alpha, result = explained
        text = narrative(result, ds)
        assert repr(result.an_oid) in text
        assert "Minimal repair" in text

    def test_counterfactual_callout(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]]),
                UncertainObject("cf", [[2.4, 2.4]]),
            ]
        )
        result = compute_causality(ds, "an", [3.0, 3.0], alpha=0.5)
        text = narrative(result, ds)
        assert "Counterfactual" in text

    def test_names_used_when_available(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0]], name="The Player"),
                UncertainObject("cf", [[2.4, 2.4]], name="The Star"),
            ]
        )
        result = compute_causality(ds, "an", [3.0, 3.0], alpha=0.5)
        assert "The Star" in narrative(result, ds)

    def test_truncation(self, rng):
        # Fabricate a result with many causes to exercise the cap.
        from repro.core.model import Cause, CauseKind

        result = CausalityResult(an_oid="an", alpha=0.5)
        ids = [f"c{i}" for i in range(15)]
        for i, oid in enumerate(ids):
            gamma = frozenset(o for o in ids[:3] if o != oid)
            result.add(
                Cause(
                    oid=oid,
                    responsibility=1.0 / (1 + len(gamma)),
                    contingency_set=gamma,
                    kind=CauseKind.ACTUAL,
                )
            )
        text = narrative(result, max_causes=5)
        assert "more cause(s)" in text


class TestGroupsAndBundle:
    def test_groups_sorted_strongest_first(self, explained):
        _ds, _q, _alpha, result = explained
        groups = responsibility_groups(result)
        values = [resp for resp, _members in groups]
        assert values == sorted(values, reverse=True)
        assert sum(len(m) for _r, m in groups) == len(result.causes)

    def test_bundle_contents(self, explained):
        ds, q, _alpha, result = explained
        bundle = explain_with_oracle(ds, result, q)
        assert bundle["repair_verified"]
        assert bundle["minimal_repair"]
        assert bundle["greedy_trajectory"]
        probabilities = [step["pr"] for step in bundle["greedy_trajectory"]]
        assert probabilities == sorted(probabilities)  # removals only help
