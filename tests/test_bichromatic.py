"""Unit tests for bichromatic reverse skyline queries and their causality."""

import numpy as np
import pytest

from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dynamically_dominates
from repro.skyline.bichromatic import (
    bichromatic_reverse_skyline,
    compute_causality_bichromatic,
    product_dominators,
)
from repro.skyline.reverse import reverse_skyline
from repro.uncertain.dataset import CertainDataset


@pytest.fixture
def customers():
    return CertainDataset(
        [[4.0, 4.0], [6.5, 6.5], [1.0, 9.0]], ids=["cheap", "mid", "odd"]
    )


@pytest.fixture
def products():
    return CertainDataset(
        [[4.3, 4.3], [4.5, 4.1], [9.5, 9.5]], ids=["p1", "p2", "p3"]
    )


class TestQuery:
    def test_dominators_identified(self, customers, products):
        q = [5.0, 5.0]
        assert product_dominators(customers, products, "cheap", q) == ["p1", "p2"]
        assert product_dominators(customers, products, "odd", q) == []

    def test_membership(self, customers, products):
        q = [5.0, 5.0]
        members = bichromatic_reverse_skyline(customers, products, q)
        assert "cheap" not in members
        assert "odd" in members

    def test_dims_mismatch_rejected(self, customers):
        products_3d = CertainDataset([[1.0, 2.0, 3.0]])
        with pytest.raises(ValueError):
            product_dominators(customers, products_3d, "cheap", [5.0, 5.0])

    def test_index_matches_scan(self, rng):
        customers = CertainDataset(rng.uniform(0, 10, size=(10, 2)))
        products = CertainDataset(rng.uniform(0, 10, size=(30, 2)))
        q = rng.uniform(0, 10, size=2)
        for oid in customers.ids():
            assert product_dominators(
                customers, products, oid, q, use_index=True
            ) == product_dominators(customers, products, oid, q, use_index=False)

    def test_reduces_to_monochromatic_when_products_equal_dataset(self, rng):
        """With A = B (minus self-domination pathologies), the bichromatic
        query agrees with the monochromatic one on distinct points."""
        points = rng.uniform(0, 10, size=(15, 2))
        ds = CertainDataset(points)
        q = rng.uniform(0, 10, size=2)
        mono = set(reverse_skyline(ds, q))
        for oid in ds.ids():
            dominators = [
                other.oid
                for other in ds
                if other.oid != oid
                and dynamically_dominates(
                    other.samples[0], np.asarray(q), ds.point_of(oid)
                )
            ]
            assert (oid in mono) == (not dominators)


class TestCausality:
    def test_equal_responsibility(self, customers, products):
        res = compute_causality_bichromatic(
            customers, products, "cheap", [5.0, 5.0]
        )
        assert res.cause_ids() == ["p1", "p2"]
        for oid in res.cause_ids():
            assert res.responsibility(oid) == pytest.approx(0.5)

    def test_counterfactual_single_product(self, customers):
        products = CertainDataset([[4.3, 4.3]], ids=["only"])
        res = compute_causality_bichromatic(
            customers, products, "cheap", [5.0, 5.0]
        )
        assert res.responsibility("only") == 1.0

    def test_member_rejected(self, customers, products):
        with pytest.raises(NotANonAnswerError):
            compute_causality_bichromatic(customers, products, "odd", [5.0, 5.0])

    def test_witnesses_valid(self, rng):
        # Distinct id namespaces: causes (products) must never collide with
        # the non-answer (a customer).
        customers = CertainDataset(
            rng.uniform(0, 10, size=(8, 2)), ids=[f"cust-{i}" for i in range(8)]
        )
        products = CertainDataset(
            rng.uniform(0, 10, size=(20, 2)), ids=[f"prod-{i}" for i in range(20)]
        )
        q = rng.uniform(0, 10, size=2)
        for oid in customers.ids():
            dominators = product_dominators(customers, products, oid, q)
            if not dominators:
                continue
            res = compute_causality_bichromatic(customers, products, oid, q)
            assert set(res.cause_ids()) == set(dominators)
            for cause in res.causes.values():
                # Removing Γ leaves exactly the cause -> still a non-answer;
                # removing the cause too flips membership.
                assert cause.contingency_set == frozenset(
                    d for d in dominators if d != cause.oid
                )

    def test_stats(self, customers, products):
        res = compute_causality_bichromatic(
            customers, products, "cheap", [5.0, 5.0]
        )
        assert res.stats.node_accesses > 0
        assert res.stats.candidates == 2
        scan = compute_causality_bichromatic(
            customers, products, "cheap", [5.0, 5.0], use_index=False
        )
        assert scan.stats.node_accesses == 0
        assert res.same_causality(scan)
