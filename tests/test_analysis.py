"""repro.analysis — the AST invariant linter.

Every rule is exercised three ways: a fixture snippet that triggers it
(true positive), a clean sibling that must not (negative), and the same
true positive silenced by an inline ``# repro: ignore[RPRxxx]``
suppression.  On top of that: suppression auditing (unused ones are
RPR900 errors), pyproject scoping semantics, the JSON reporter
round-trip, and the CLI's stable exit codes (0 clean / 1 findings /
2 usage or config error).
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ERROR,
    JSON_SCHEMA_VERSION,
    PARSE_ERROR,
    RULE_CLASSES,
    UNUSED_SUPPRESSION,
    WARNING,
    FileLinter,
    Finding,
    LintConfig,
    LintConfigError,
    all_rules,
    load_config,
    render_json,
    render_text,
    report_from_json,
)
from repro.analysis.cli import main as lint_main

#: Virtual repo root: fixtures are linted as in-memory sources with a
#: path under this root, so per-rule glob scoping behaves exactly as it
#: does on the real tree without touching disk.
ROOT = Path("/virtual-repro")


def lint_snippet(source, rel="src/repro/engine/fixture.py", config=None):
    linter = FileLinter(all_rules(), config or LintConfig(root=ROOT))
    return linter.lint_source(source, ROOT / rel)


def codes(findings):
    return sorted(f.code for f in findings)


def suppressed(source, line, code):
    """*source* with an ignore comment appended to physical *line*."""
    lines = source.splitlines()
    lines[line - 1] += f"  # repro: ignore[{code}]"
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# per-rule fixtures: (true-positive source, path it fires on, finding line)
# ---------------------------------------------------------------------------
FIXTURES = {
    "RPR001": (
        "import time\n\ndef f():\n    return time.time()\n",
        "src/repro/engine/clock.py",
        4,
    ),
    "RPR002": (
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
        "src/repro/uncertain/gen.py",
        4,
    ),
    "RPR003": (
        "def f(items):\n    return [x for x in set(items)]\n",
        "src/repro/engine/order.py",
        2,
    ),
    "RPR101": (
        "import time\n\nasync def f():\n    time.sleep(0.1)\n",
        "src/repro/serve/loop.py",
        4,
    ),
    "RPR102": (
        "async def f(self, g):\n    with self._lock:\n        await g()\n",
        "src/repro/serve/locks.py",
        2,
    ),
    "RPR103": (
        "def handle(state, op):\n    state.session.apply(op)\n",
        "src/repro/serve/handlers.py",
        2,
    ),
    "RPR201": (
        "from repro.engine.spec import QuerySpec\n\n"
        "class FooSpec(QuerySpec):\n    kind = 'foo'\n",
        "src/repro/engine/families.py",
        3,
    ),
    "RPR202": (
        "def q(self, spec, fn):\n"
        "    return self.cache.get_or_compute((spec.kind,), fn)\n",
        "src/repro/engine/exec.py",
        2,
    ),
    "RPR301": (
        "def f(x=[]):\n    return x\n",
        "src/repro/engine/args.py",
        1,
    ),
    "RPR302": (
        "def f(g):\n    try:\n        g()\n    except:\n        pass\n",
        "src/repro/io/any.py",
        4,
    ),
    "RPR303": (
        "def f():\n    print('hi')\n",
        "src/repro/engine/noise.py",
        2,
    ),
}


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_fires_on_fixture(code):
    source, rel, line = FIXTURES[code]
    findings = lint_snippet(source, rel)
    assert codes(findings) == [code]
    assert findings[0].line == line
    assert findings[0].path == rel


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_suppression_silences_rule(code):
    source, rel, line = FIXTURES[code]
    findings = lint_snippet(suppressed(source, line, code), rel)
    # the finding is silenced AND the suppression counts as used (no RPR900)
    assert findings == []


def test_rule_count_meets_floor():
    assert len(RULE_CLASSES) >= 8
    linter = FileLinter(all_rules(), LintConfig(root=ROOT))
    assert len(linter.active) >= 8


# ---------------------------------------------------------------------------
# per-rule negatives
# ---------------------------------------------------------------------------
def test_monotonic_clocks_are_clean():
    source = (
        "import time\n\ndef f():\n"
        "    return time.monotonic() + time.perf_counter()\n"
    )
    assert lint_snippet(source, "src/repro/engine/clock.py") == []


def test_wall_clock_allowed_in_bench():
    source, _, _ = FIXTURES["RPR001"]
    assert lint_snippet(source, "src/repro/bench/timing.py") == []


def test_seeded_rng_is_clean():
    source = (
        "import numpy as np\nimport random\n\n"
        "def f(seed):\n"
        "    return np.random.default_rng(seed), random.Random(7)\n"
    )
    assert lint_snippet(source, "src/repro/uncertain/gen.py") == []


def test_global_random_module_flagged():
    source = "import random\n\ndef f():\n    return random.random()\n"
    assert codes(lint_snippet(source, "src/repro/engine/x.py")) == ["RPR002"]


def test_sorted_iteration_is_clean():
    source = "def f(d):\n    return [v for v in sorted(d.values())]\n"
    assert lint_snippet(source, "src/repro/engine/order.py") == []


def test_set_iteration_outside_scoped_dirs_is_clean():
    source, _, _ = FIXTURES["RPR003"]
    assert lint_snippet(source, "src/repro/io/loader.py") == []


def test_dict_values_iteration_flagged():
    source = "def f(d):\n    for v in d.values():\n        v()\n"
    assert codes(lint_snippet(source, "src/repro/prsq/agg.py")) == ["RPR003"]


def test_blocking_call_in_sync_def_is_clean():
    source = "import time\n\ndef f():\n    time.sleep(0.1)\n"
    assert lint_snippet(source, "src/repro/serve/loop.py") == []


def test_nested_sync_def_inside_async_is_clean():
    source = (
        "import time\n\nasync def f():\n"
        "    def worker():\n        time.sleep(0.1)\n"
        "    return worker\n"
    )
    assert lint_snippet(source, "src/repro/serve/loop.py") == []


def test_lock_without_await_is_clean():
    source = (
        "async def f(self, g):\n"
        "    with self._lock:\n        x = 1\n"
        "    await g()\n    return x\n"
    )
    assert lint_snippet(source, "src/repro/serve/locks.py") == []


def test_asyncio_lock_async_with_is_clean():
    source = (
        "async def f(self, g):\n"
        "    async with self._lock:\n        await g()\n"
    )
    assert lint_snippet(source, "src/repro/serve/locks.py") == []


def test_mutation_inside_apply_seam_is_clean():
    source = (
        "def _apply_write(state, op):\n"
        "    state.session.apply(op)\n"
        "    state.published = state.session.snapshot()\n"
    )
    assert lint_snippet(source, "src/repro/serve/handlers.py") == []


def test_published_assignment_outside_seam_flagged():
    source = "def sneak(state, snap):\n    state.published = snap\n"
    assert codes(lint_snippet(source, "src/repro/serve/state.py")) == [
        "RPR103"
    ]


def test_session_mutation_outside_serve_is_unscoped():
    source, _, _ = FIXTURES["RPR103"]
    assert lint_snippet(source, "src/repro/engine/session2.py") == []


def test_spec_with_both_flags_is_clean():
    source = (
        "from repro.engine.spec import QuerySpec\n\n"
        "class FooSpec(QuerySpec):\n"
        "    cacheable = True\n    mutates = False\n"
    )
    assert lint_snippet(source, "src/repro/engine/families.py") == []


def test_spec_missing_one_flag_flagged():
    source = (
        "from repro.engine.spec import QuerySpec\n\n"
        "class FooSpec(QuerySpec):\n    cacheable = True\n"
    )
    findings = lint_snippet(source, "src/repro/engine/families.py")
    assert codes(findings) == ["RPR201"]
    assert "mutates" in findings[0].message


def test_cache_key_via_session_key_is_clean():
    source = (
        "def q(self, spec, fn):\n"
        "    key = self._key(spec)\n"
        "    return self.cache.get_or_compute(key, fn)\n"
    )
    assert lint_snippet(source, "src/repro/engine/exec.py") == []


def test_cache_key_untraceable_name_not_flagged():
    # a key passed in as a parameter cannot be proven wrong
    source = (
        "def q(self, key, fn):\n"
        "    return self.cache.get_or_compute(key, fn)\n"
    )
    assert lint_snippet(source, "src/repro/engine/exec.py") == []


def test_none_default_is_clean():
    source = "def f(x=None):\n    return x or []\n"
    assert lint_snippet(source, "src/repro/engine/args.py") == []


def test_typed_except_is_clean():
    source = (
        "def f(g):\n    try:\n        g()\n"
        "    except Exception:\n        pass\n"
    )
    assert lint_snippet(source, "src/repro/io/any.py") == []


def test_print_in_cli_is_clean_and_severity_is_warning():
    source, _, _ = FIXTURES["RPR303"]
    assert lint_snippet(source, "src/repro/io/cli.py") == []
    finding = lint_snippet(source, "src/repro/engine/noise.py")[0]
    assert finding.severity == WARNING


# ---------------------------------------------------------------------------
# suppression auditing
# ---------------------------------------------------------------------------
def test_unused_suppression_is_an_error():
    source = "def f():\n    return 1  # repro: ignore[RPR001]\n"
    findings = lint_snippet(source)
    assert codes(findings) == [UNUSED_SUPPRESSION]
    assert findings[0].line == 2
    assert findings[0].severity == ERROR


def test_unknown_code_suppression_always_flagged():
    source = "def f():\n    return 1  # repro: ignore[XYZ123]\n"
    assert codes(lint_snippet(source)) == [UNUSED_SUPPRESSION]


def test_suppression_of_deselected_rule_not_flagged():
    # a narrowed run never executed RPR001, so its suppression is not stale
    source, rel, line = FIXTURES["RPR001"]
    config = LintConfig(root=ROOT, select=("RPR302",))
    findings = lint_snippet(suppressed(source, line, "RPR001"), rel, config)
    assert findings == []


def test_suppression_inside_string_is_not_a_suppression():
    source = 'def f():\n    return "# repro: ignore[RPR001]"\n'
    assert lint_snippet(source) == []


def test_one_comment_multiple_codes():
    source = (
        "import time\n\n"
        "async def f():\n"
        "    time.sleep(time.time())  # repro: ignore[RPR001, RPR101]\n"
    )
    assert lint_snippet(source, "src/repro/serve/loop.py") == []


def test_syntax_error_reports_parse_finding():
    findings = lint_snippet("def f(:\n")
    assert codes(findings) == [PARSE_ERROR]


# ---------------------------------------------------------------------------
# config: select/ignore and per-path scoping
# ---------------------------------------------------------------------------
KNOWN = {cls.code for cls in RULE_CLASSES}


def test_select_and_ignore_narrow_the_run():
    source, rel, _ = FIXTURES["RPR001"]
    assert lint_snippet(source, rel, LintConfig(root=ROOT, select=("RPR302",))) == []
    assert lint_snippet(source, rel, LintConfig(root=ROOT, ignore=("RPR001",))) == []


def test_config_paths_replace_rule_defaults(tmp_path):
    config_file = tmp_path / "pyproject.toml"
    config_file.write_text(
        "[tool.repro.lint.rules.RPR001]\npaths = ['lib/*']\n"
    )
    config = load_config(config_file, KNOWN)
    source, _, _ = FIXTURES["RPR001"]
    linter = FileLinter(all_rules(), config)
    # default scope (src/repro/*) no longer applies; the new one does
    assert linter.lint_source(source, tmp_path / "src/repro/engine/c.py") == []
    assert codes(linter.lint_source(source, tmp_path / "lib/c.py")) == [
        "RPR001"
    ]


def test_config_exclude_extends_rule_defaults(tmp_path):
    config_file = tmp_path / "pyproject.toml"
    config_file.write_text(
        "[tool.repro.lint.rules.RPR001]\n"
        "exclude = ['src/repro/legacy/*']\n"
    )
    config = load_config(config_file, KNOWN)
    source, _, _ = FIXTURES["RPR001"]
    linter = FileLinter(all_rules(), config)
    assert linter.lint_source(source, tmp_path / "src/repro/legacy/c.py") == []
    # the rule's own bench exclusion survives the extension
    assert linter.lint_source(source, tmp_path / "src/repro/bench/c.py") == []
    assert codes(
        linter.lint_source(source, tmp_path / "src/repro/engine/c.py")
    ) == ["RPR001"]


def test_cli_select_overrides_file_select(tmp_path):
    config_file = tmp_path / "pyproject.toml"
    config_file.write_text("[tool.repro.lint]\nselect = ['RPR001']\n")
    config = load_config(config_file, KNOWN, select=("RPR302",))
    assert config.active_codes(sorted(KNOWN)) == {"RPR302"}


def test_config_rejects_unknown_code(tmp_path):
    config_file = tmp_path / "pyproject.toml"
    config_file.write_text("[tool.repro.lint]\nselect = ['RPR777']\n")
    with pytest.raises(LintConfigError):
        load_config(config_file, KNOWN)


def test_config_rejects_invalid_toml(tmp_path):
    config_file = tmp_path / "pyproject.toml"
    config_file.write_text("[tool.repro.lint\n")
    with pytest.raises(LintConfigError):
        load_config(config_file, KNOWN)


def test_config_rejects_unknown_scope_key(tmp_path):
    config_file = tmp_path / "pyproject.toml"
    config_file.write_text(
        "[tool.repro.lint.rules.RPR001]\nfiles = ['x']\n"
    )
    with pytest.raises(LintConfigError):
        load_config(config_file, KNOWN)


def test_duplicate_rule_codes_rejected():
    rules = all_rules()
    with pytest.raises(ValueError):
        FileLinter(rules + [rules[0]], LintConfig(root=ROOT))


# ---------------------------------------------------------------------------
# reporters
# ---------------------------------------------------------------------------
def test_json_report_round_trips():
    source, rel, _ = FIXTURES["RPR001"]
    findings = lint_snippet(source, rel)
    text = render_json(findings, files=3)
    back, files = report_from_json(text)
    assert back == findings
    assert files == 3
    payload = json.loads(text)
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["summary"]["findings"] == 1
    assert payload["summary"]["errors"] == 1
    assert payload["summary"]["by_code"] == {"RPR001": 1}


def test_json_report_rejects_future_version():
    text = render_json([], 0).replace(
        f'"version": {JSON_SCHEMA_VERSION}', '"version": 999'
    )
    with pytest.raises(ValueError):
        report_from_json(text)


def test_text_report_lists_findings_and_summary():
    source, rel, _ = FIXTURES["RPR001"]
    findings = lint_snippet(source, rel)
    text = render_text(findings, files=1)
    assert f"{rel}:4:" in text
    assert "RPR001 x1" in text
    assert render_text([], files=5) == "clean: 0 findings in 5 file(s)"


def test_findings_sort_by_path_then_line():
    a = Finding("b.py", 1, 0, "RPR001", ERROR, "m")
    b = Finding("a.py", 9, 0, "RPR001", ERROR, "m")
    c = Finding("a.py", 2, 0, "RPR001", ERROR, "m")
    assert sorted([a, b, c]) == [c, b, a]


# ---------------------------------------------------------------------------
# CLI exit codes (0 clean / 1 findings / 2 usage or config error)
# ---------------------------------------------------------------------------
def _write(tmp, rel, text):
    path = tmp / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def test_cli_exit_1_on_findings_and_0_on_clean(tmp_path, capsys):
    config = _write(tmp_path, "pyproject.toml", "[tool.repro.lint]\n")
    source, rel, _ = FIXTURES["RPR001"]
    _write(tmp_path, rel, source)
    argv = [str(tmp_path / "src"), "--config", str(config)]
    assert lint_main(argv) == 1
    assert "RPR001" in capsys.readouterr().out

    _write(tmp_path, rel, "import time\n\ndef f():\n    return time.monotonic()\n")
    assert lint_main(argv) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_output(tmp_path, capsys):
    config = _write(tmp_path, "pyproject.toml", "[tool.repro.lint]\n")
    source, rel, _ = FIXTURES["RPR303"]
    _write(tmp_path, rel, source)
    rc = lint_main(
        [str(tmp_path / "src"), "--json", "--config", str(config)]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["by_code"] == {"RPR303": 1}
    assert payload["summary"]["warnings"] == 1


def test_cli_exit_2_on_missing_path(tmp_path, capsys):
    config = _write(tmp_path, "pyproject.toml", "[tool.repro.lint]\n")
    rc = lint_main(
        [str(tmp_path / "nope"), "--config", str(config)]
    )
    assert rc == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_exit_2_on_unknown_select(tmp_path, capsys):
    rc = lint_main([str(tmp_path), "--select", "RPR777"])
    assert rc == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_explain_lists_every_rule(capsys):
    assert lint_main(["--explain"]) == 0
    out = capsys.readouterr().out
    for cls in RULE_CLASSES:
        assert cls.code in out
