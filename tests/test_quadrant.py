"""Unit tests for repro.geometry.quadrant (pdf-model geometry)."""

import numpy as np
import pytest

from repro.geometry.quadrant import (
    clip_to_quadrant,
    overlapped_quadrants,
    quadrant_of,
    quadrant_rect,
    split_by_quadrants,
)
from repro.geometry.rectangle import Rect


class TestQuadrantOf:
    def test_2d_masks(self):
        q = [5.0, 5.0]
        assert quadrant_of([6.0, 6.0], q) == 0b11
        assert quadrant_of([4.0, 6.0], q) == 0b10
        assert quadrant_of([6.0, 4.0], q) == 0b01
        assert quadrant_of([4.0, 4.0], q) == 0b00

    def test_boundary_goes_to_upper(self):
        assert quadrant_of([5.0, 4.0], [5.0, 5.0]) == 0b01

    def test_3d(self):
        assert quadrant_of([1.0, -1.0, 1.0], [0.0, 0.0, 0.0]) == 0b101


class TestQuadrantRect:
    def test_upper_right(self):
        bounds = Rect([0.0, 0.0], [10.0, 10.0])
        r = quadrant_rect(0b11, [5.0, 5.0], bounds)
        assert r.lo.tolist() == [5.0, 5.0]
        assert r.hi.tolist() == [10.0, 10.0]

    def test_disjoint_orthant_rejected(self):
        bounds = Rect([6.0, 6.0], [10.0, 10.0])
        with pytest.raises(ValueError):
            quadrant_rect(0b00, [5.0, 5.0], bounds)


class TestOverlappedQuadrants:
    def test_region_in_single_quadrant(self):
        region = Rect([6.0, 6.0], [7.0, 7.0])
        assert list(overlapped_quadrants(region, [5.0, 5.0])) == [0b11]

    def test_region_straddling_one_axis(self):
        region = Rect([4.0, 6.0], [6.0, 7.0])
        assert sorted(overlapped_quadrants(region, [5.0, 5.0])) == [0b10, 0b11]

    def test_region_covering_all_four(self):
        region = Rect([4.0, 4.0], [6.0, 6.0])
        assert sorted(overlapped_quadrants(region, [5.0, 5.0])) == [0, 1, 2, 3]

    def test_touching_boundary_not_reported(self):
        region = Rect([5.0, 6.0], [6.0, 7.0])  # lo touches the x-split
        assert list(overlapped_quadrants(region, [5.0, 5.0])) == [0b11]


class TestClipAndSplit:
    def test_clip_reduces_to_quadrant(self):
        region = Rect([4.0, 4.0], [6.0, 6.0])
        piece = clip_to_quadrant(region, [5.0, 5.0], 0b00)
        assert piece is not None
        assert piece.lo.tolist() == [4.0, 4.0]
        assert piece.hi.tolist() == [5.0, 5.0]

    def test_clip_empty_is_none(self):
        region = Rect([6.0, 6.0], [7.0, 7.0])
        assert clip_to_quadrant(region, [5.0, 5.0], 0b00) is None

    def test_split_tiles_region(self):
        region = Rect([4.0, 4.0], [6.0, 6.0])
        q = [5.0, 5.0]
        pieces = split_by_quadrants(region, q)
        assert len(pieces) == 4
        total = sum(piece.area() for _mask, piece in pieces)
        assert total == pytest.approx(region.area())

    def test_split_single_quadrant_returns_region(self):
        region = Rect([6.0, 6.0], [8.0, 7.0])
        pieces = split_by_quadrants(region, [5.0, 5.0])
        assert len(pieces) == 1
        assert pieces[0][1] == region

    def test_split_masks_consistent_with_piece_centers(self, rng):
        q = rng.uniform(0, 10, size=2)
        region = Rect.bounding(rng.uniform(0, 10, size=(4, 2)))
        for mask, piece in split_by_quadrants(region, q):
            center_mask = quadrant_of(piece.center, q)
            # A piece with positive extent lies strictly inside its orthant;
            # degenerate pieces may sit on the boundary (assigned upward).
            if np.all(piece.extents > 0):
                assert center_mask == mask
