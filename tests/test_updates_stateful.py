"""Stateful update-parity suite (the tentpole's soundness proof).

Hypothesis drives a random interleaving of live updates and queries
against one long-lived session, then checks that **every query family
returns bit-identical results to a fresh session built over the final
contents** — across ``use_numpy`` on/off (kernel paths) and
``build_index`` on/off (index lifecycle), with the no-index scalar
evaluation as an additional pruning-free reference for PRSQ.

Queries are interleaved *during* the churn on purpose: they populate the
result cache under old fingerprints, so any unsound cache keying or
partially patched derived structure (R-tree, tensor, ``points``) shows up
as a bit difference at the end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    CausalityCertainSpec,
    CausalitySpec,
    DatasetDelta,
    KSkybandCausalitySpec,
    PRSQSpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    Session,
)
from repro.prsq.query import prsq_probabilities
from repro.uncertain import CertainDataset, UncertainDataset, UncertainObject

Q = (5.0, 5.0)
ALPHA = 0.5

OPS = st.lists(
    st.sampled_from(["insert", "delete", "update", "query"]),
    max_size=10,
)


def _uncertain_object(oid, rng):
    return UncertainObject(
        oid, rng.uniform(0.0, 10.0, size=(int(rng.integers(1, 4)), 2))
    )


def _rebuild_uncertain(dataset):
    """Fresh objects (new arrays, cold digests) over the final contents."""
    return UncertainDataset(
        [
            UncertainObject(
                o.oid, o.samples.copy(), o.probabilities.copy(), name=o.name
            )
            for o in dataset.objects()
        ],
        page_size=dataset.page_size,
    )


def _bits(probabilities):
    return {oid: value.hex() for oid, value in probabilities.items()}


def _churn(session, op_kinds, rng, make_object, min_objects=3):
    """Apply the drawn interleaving; returns the number of applied updates."""
    next_id = 1000
    applied = 0
    for kind in op_kinds:
        ids = session.dataset.ids()
        if kind == "insert":
            session.apply(
                DatasetDelta.insertion(make_object(f"n{next_id}", rng))
            )
            next_id += 1
            applied += 1
        elif kind == "delete":
            if len(ids) <= min_objects:
                continue
            oid = ids[int(rng.integers(len(ids)))]
            session.apply(DatasetDelta.deletion(oid))
            applied += 1
        elif kind == "update":
            oid = ids[int(rng.integers(len(ids)))]
            session.apply(DatasetDelta.replacement(make_object(oid, rng)))
            applied += 1
        else:  # query: warm caches under the current fingerprint
            session.query(PRSQSpec(q=Q, alpha=ALPHA, want="probabilities"))
    return applied


@settings(max_examples=20, deadline=None)
@given(
    op_kinds=OPS,
    seed=st.integers(min_value=0, max_value=2**16),
    use_numpy=st.booleans(),
    build_index=st.booleans(),
)
def test_uncertain_session_parity_after_churn(
    op_kinds, seed, use_numpy, build_index
):
    rng = np.random.default_rng(seed)
    dataset = UncertainDataset(
        [_uncertain_object(f"o{i}", rng) for i in range(6)]
    )
    session = Session(dataset, use_numpy=use_numpy, build_index=build_index)
    _churn(session, op_kinds, rng, _uncertain_object)

    rebuilt = _rebuild_uncertain(session.dataset)
    fresh = Session(rebuilt, use_numpy=use_numpy, build_index=build_index)

    # incremental fingerprint == full recompute over the final contents
    assert session.fingerprint == fresh.fingerprint

    spec = PRSQSpec(q=Q, alpha=ALPHA, want="probabilities")
    live = session.query(spec).value.probabilities
    ref = fresh.query(spec).value.probabilities
    assert _bits(live) == _bits(ref)

    # pruning-free scalar reference: the R-tree maintained through churn
    # must not have changed a single bit
    unpruned = prsq_probabilities(rebuilt, Q, use_index=False, use_numpy=use_numpy)
    assert _bits(live) == _bits(unpruned)

    for want in ("answers", "non_answers"):
        live_ids = session.query(PRSQSpec(q=Q, alpha=ALPHA, want=want)).value
        fresh_ids = fresh.query(PRSQSpec(q=Q, alpha=ALPHA, want=want)).value
        assert live_ids.ids == fresh_ids.ids

    non_answers = [oid for oid, pr in ref.items() if pr < ALPHA]
    if non_answers:
        an = non_answers[0]
        causality_spec = CausalitySpec(an=an, q=Q, alpha=ALPHA)
        assert (
            session.query(causality_spec).value.causes
            == fresh.query(causality_spec).value.causes
        )


def _certain_object(oid, rng):
    return UncertainObject.certain(oid, rng.uniform(0.0, 10.0, size=2))


@settings(max_examples=20, deadline=None)
@given(
    op_kinds=OPS,
    seed=st.integers(min_value=0, max_value=2**16),
    use_numpy=st.booleans(),
    build_index=st.booleans(),
)
def test_certain_session_parity_after_churn(
    op_kinds, seed, use_numpy, build_index
):
    rng = np.random.default_rng(seed)
    dataset = CertainDataset(
        rng.uniform(0.0, 10.0, size=(8, 2)), ids=[f"c{i}" for i in range(8)]
    )
    session = Session(dataset, use_numpy=use_numpy, build_index=build_index)

    def query(s):
        return s.query(ReverseSkylineSpec(q=Q)).value.ids

    next_id = 1000
    for kind in op_kinds:
        ids = session.dataset.ids()
        if kind == "insert":
            session.apply(
                DatasetDelta.insertion(_certain_object(f"n{next_id}", rng))
            )
            next_id += 1
        elif kind == "delete":
            if len(ids) <= 3:
                continue
            session.apply(DatasetDelta.deletion(ids[int(rng.integers(len(ids)))]))
        elif kind == "update":
            oid = ids[int(rng.integers(len(ids)))]
            session.apply(DatasetDelta.replacement(_certain_object(oid, rng)))
        else:
            query(session)

    rebuilt = CertainDataset(
        session.dataset.points.copy(),
        ids=session.dataset.ids(),
        names=[o.name for o in session.dataset],
        page_size=session.dataset.page_size,
    )
    fresh = Session(rebuilt, use_numpy=use_numpy, build_index=build_index)
    assert session.fingerprint == fresh.fingerprint

    skyline = query(session)
    assert skyline == query(fresh)
    band_spec = ReverseKSkybandSpec(q=Q, k=2)
    assert session.query(band_spec).value.ids == fresh.query(band_spec).value.ids

    weights = ((1.0, 0.3), (0.2, 1.0), (0.7, 0.7))
    topk_spec = ReverseTopKSpec(q=(4.0, 4.5), k=3, weights=weights)
    assert (
        session.query(topk_spec).value.user_ids
        == fresh.query(topk_spec).value.user_ids
    )

    non_answers = [oid for oid in session.dataset.ids() if oid not in skyline]
    if non_answers:
        an = non_answers[0]
        cr_spec = CausalityCertainSpec(an=an, q=Q)
        assert (
            session.query(cr_spec).value.causes
            == fresh.query(cr_spec).value.causes
        )
        band_causality = KSkybandCausalitySpec(an=an, q=Q, k=1)
        assert (
            session.query(band_causality).value.causes
            == fresh.query(band_causality).value.causes
        )


@settings(max_examples=10, deadline=None)
@given(
    op_kinds=OPS,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_shared_cache_across_kernel_paths_stays_sound(op_kinds, seed):
    """One shared cache, two sessions (numpy/scalar), churn on one side.

    The kernel switch deliberately stays out of the cache key (the paths
    are bit-compatible), so the scalar session may consume entries the
    numpy session wrote — but only under the *matching* fingerprint.
    """
    from repro.engine import LRUCache

    rng = np.random.default_rng(seed)
    dataset = UncertainDataset(
        [_uncertain_object(f"o{i}", rng) for i in range(5)]
    )
    cache = LRUCache(maxsize=256)
    fast = Session(dataset, cache=cache, use_numpy=True)
    _churn(fast, op_kinds, rng, _uncertain_object)

    scalar = Session(
        _rebuild_uncertain(fast.dataset), cache=cache, use_numpy=False
    )
    spec = PRSQSpec(q=Q, alpha=ALPHA, want="probabilities")
    assert _bits(fast.query(spec).value.probabilities) == _bits(
        scalar.query(spec).value.probabilities
    )
