"""repro.faults: plans, the injector, and worker-crash recovery.

Covers the deterministic schedule layer (validation, JSON round-trip,
seeded generation, parsing), the process-global injector (1-based hit
counting, fire-once, install/uninstall lifecycle), and the
:class:`ParallelExecutor` recovery contract under SIGKILLed pool workers:
respawn once and return bit-identical answers, or — when the kill rule is
sticky and fires again — fail with a typed :class:`WorkerCrashError`
instead of hanging.
"""

import json

import pytest

from repro import faults, obs
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine.executor import ParallelExecutor, SerialExecutor
from repro.engine.session import Session
from repro.engine.spec import PRSQSpec
from repro.exceptions import InvalidSpecError, WorkerCrashError
from repro.faults import SEAM_ACTIONS, SEAMS, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# FaultRule / FaultPlan
# ----------------------------------------------------------------------
class TestPlan:
    def test_rule_validation(self):
        with pytest.raises(InvalidSpecError):
            FaultRule(seam="nope", hit=1, action="drop")
        with pytest.raises(InvalidSpecError):
            FaultRule(seam="socket.read", hit=0, action="drop")
        with pytest.raises(InvalidSpecError):
            FaultRule(seam="socket.read", hit=1, action="kill")

    def test_every_seam_has_legal_actions(self):
        for seam, actions in SEAM_ACTIONS.items():
            for action in actions:
                rule = FaultRule(seam=seam, hit=2, action=action)
                assert rule.seam == seam

    def test_json_round_trip(self):
        plan = FaultPlan.generate(7)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert json.loads(plan.to_json())["seed"] == 7

    def test_generate_is_deterministic(self):
        assert FaultPlan.generate(123) == FaultPlan.generate(123)
        assert FaultPlan.generate(123) != FaultPlan.generate(124)

    def test_generate_spans_all_seams_across_seeds(self):
        seen = set()
        for seed in range(200):
            seen.update(FaultPlan.generate(seed).seams())
        assert seen == set(SEAMS)

    def test_drop_keeps_sticky_rules(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(seam="worker.chunk", hit=1, action="kill"),
            FaultRule(seam="worker.chunk", hit=2, action="kill", sticky=True),
            FaultRule(seam="socket.read", hit=1, action="drop"),
        ))
        dropped = plan.drop("worker.chunk")
        assert [r.seam for r in dropped.rules] == [
            "worker.chunk", "socket.read"
        ]
        assert dropped.rules[0].sticky

    def test_parse_seed_json_and_file(self, tmp_path):
        assert FaultPlan.parse("41") == FaultPlan.generate(41)
        plan = FaultPlan.generate(5)
        assert FaultPlan.parse(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.parse(str(path)) == plan
        with pytest.raises(InvalidSpecError):
            FaultPlan.parse(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestInjector:
    def test_hits_are_one_based_and_fire_once(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(seam="socket.read", hit=2, action="stall", delay_s=0.01),
        ))
        injector = faults.FaultInjector(plan)
        assert injector.check("socket.read") is None          # hit 1
        rule = injector.check("socket.read")                  # hit 2 fires
        assert rule is not None and rule.action == "stall"
        assert injector.check("socket.read") is None          # never again
        assert injector.exhausted()
        events = injector.events()
        assert len(events) == 1 and events[0]["hit"] == 2

    def test_module_level_install_lifecycle(self):
        assert faults.active() is None
        assert faults.check("socket.read") is None  # inactive: no-op
        plan = FaultPlan(seed=0, rules=(
            FaultRule(seam="writer.apply", hit=1, action="error"),
        ))
        with faults.installed(plan):
            assert faults.active() is not None
            rule = faults.check("writer.apply", dataset="d")
            assert rule is not None and rule.action == "error"
        assert faults.active() is None

    def test_install_empty_plan_clears(self):
        faults.install(FaultPlan.generate(3))
        assert faults.active() is not None
        faults.install(None)
        assert faults.active() is None

    def test_fired_events_feed_metrics(self):
        before = obs.registry().counter("fault.injected").value
        plan = FaultPlan(seed=0, rules=(
            FaultRule(seam="socket.write", hit=1, action="drop"),
        ))
        with faults.installed(plan):
            faults.check("socket.write")
        assert obs.registry().counter("fault.injected").value == before + 1


# ----------------------------------------------------------------------
# ParallelExecutor worker-crash recovery
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def crash_session():
    return Session(generate_uncertain_dataset(48, 2, seed=13))


SPECS = [
    PRSQSpec(q=(4800.0 + 60.0 * i, 5100.0 - 60.0 * i), alpha=0.4)
    for i in range(8)
]


class TestWorkerCrashRecovery:
    def test_killed_worker_respawns_and_matches_serial(self, crash_session):
        serial = crash_session.execute_batch(SPECS, SerialExecutor())
        plan = FaultPlan(seed=0, rules=(
            FaultRule(seam="worker.chunk", hit=1, action="kill"),
        ))
        respawns = obs.registry().counter("fault.worker_respawns")
        before = respawns.value
        with faults.installed(plan):
            parallel = crash_session.execute_batch(
                SPECS, ParallelExecutor(workers=2, chunk_size=2)
            )
        assert respawns.value == before + 1
        assert len(parallel) == len(serial)
        for a, b in zip(serial, parallel):
            assert a.error is None and b.error is None
            assert a.value == b.value

    def test_sticky_kill_gives_up_with_typed_error(self, crash_session):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(seam="worker.chunk", hit=1, action="kill", sticky=True),
        ))
        with faults.installed(plan):
            with pytest.raises(WorkerCrashError, match="twice"):
                crash_session.execute_batch(
                    SPECS, ParallelExecutor(workers=2, chunk_size=2)
                )

    def test_stream_recovers_in_order(self, crash_session):
        serial = crash_session.execute_batch(SPECS, SerialExecutor())
        plan = FaultPlan(seed=0, rules=(
            FaultRule(seam="worker.chunk", hit=2, action="kill"),
        ))
        with faults.installed(plan):
            executor = ParallelExecutor(workers=2, chunk_size=2)
            streamed = list(executor.stream(crash_session, SPECS))
        assert [s.value for s in streamed] == [s.value for s in serial]
