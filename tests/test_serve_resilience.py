"""Resilience layers over repro.serve: deadlines, idempotency, degraded
mode, client retries, graceful drain, and the CLI failure contract.

Everything here is deterministic: faults come from explicit
:class:`FaultPlan` rules (never timing races), retry jitter is seeded,
and overload is created by holding the server's only admission slot from
the test's own event loop.
"""

import asyncio
import json
import socket
import time

import numpy as np
import pytest

from repro import faults, obs
from repro.api.remote import RemoteClient
from repro.api.retry import RetryPolicy
from repro.engine.spec import PRSQSpec, UpdateSpec
from repro.exceptions import (
    DatasetDegradedError,
    DeadlineExceededError,
    InvalidSpecError,
    OverloadedError,
)
from repro.faults import FaultPlan, FaultRule
from repro.serve import DatasetService, ReproServer, ServeConfig
from repro.uncertain import UncertainDataset, UncertainObject

Q = (5.0, 5.0)


def _dataset(n=24, seed=11):
    rng = np.random.default_rng(seed)
    return UncertainDataset(
        [
            UncertainObject(f"o{i}", rng.uniform(0.0, 10.0, size=(3, 2)))
            for i in range(n)
        ]
    )


def _config(**overrides):
    base = dict(port=0, threads=2, cache_size=256)
    base.update(overrides)
    return ServeConfig(**base)


def _insert_spec(oid):
    return UpdateSpec(inserts=(
        UncertainObject(oid, [[1.0, 2.0], [2.0, 1.0]]),
    ))


async def _http(port, raw):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.decode().split("\r\n")[0].split()[1])
    return status, body


# ----------------------------------------------------------------------
# deadline propagation
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_deadline_is_typed_end_to_end(self):
        async def main():
            async with ReproServer({"default": _dataset()}, _config()) as srv:
                async with await RemoteClient.connect(port=srv.port) as client:
                    with pytest.raises(DeadlineExceededError):
                        await client.query_envelope(
                            PRSQSpec(q=Q, alpha=0.4), deadline_ms=0.001
                        )
                    # The connection stays usable afterwards.
                    envelope, _ = await client.query_envelope(
                        PRSQSpec(q=Q, alpha=0.4)
                    )
                    assert envelope.ok

        asyncio.run(main())

    def test_expired_deadline_in_write_queue(self):
        async def main():
            async with DatasetService({"default": _dataset()}, _config()) as svc:
                with pytest.raises(DeadlineExceededError):
                    await svc.execute(
                        _insert_spec("late"),
                        deadline=time.monotonic() - 1.0,
                    )
                # The expired write must never have been applied.
                envelope, _ = await svc.execute(PRSQSpec(q=Q, alpha=0.4))
                assert envelope.ok
                assert svc.state("default").published.version == 0

        asyncio.run(main())

    def test_http_maps_deadline_to_504(self):
        async def main():
            async with ReproServer({"default": _dataset()}, _config()) as srv:
                body = json.dumps({
                    "spec": {"kind": "prsq", "q": list(Q), "alpha": 0.4},
                    "deadline_ms": 0.001,
                }).encode()
                status, payload = await _http(
                    srv.port,
                    b"POST /query HTTP/1.1\r\nContent-Length: "
                    + str(len(body)).encode()
                    + b"\r\nConnection: close\r\n\r\n" + body,
                )
                assert status == 504
                assert json.loads(payload)["error"]["code"] == "deadline_exceeded"

        asyncio.run(main())

    def test_deadline_counter_increments_once(self):
        async def main():
            counter = obs.registry().counter("serve.deadline_exceeded")
            before = counter.value
            async with DatasetService({"default": _dataset()}, _config()) as svc:
                with pytest.raises(DeadlineExceededError):
                    await svc.execute(
                        PRSQSpec(q=Q, alpha=0.4),
                        deadline=time.monotonic() - 1.0,
                    )
            assert counter.value == before + 1

        asyncio.run(main())


# ----------------------------------------------------------------------
# idempotency
# ----------------------------------------------------------------------
class TestIdempotency:
    def test_same_key_applies_exactly_once(self):
        async def main():
            async with DatasetService({"default": _dataset()}, _config()) as svc:
                first, v1 = await svc.execute(
                    _insert_spec("dup"), idem="k1"
                )
                second, v2 = await svc.execute(
                    _insert_spec("dup"), idem="k1"
                )
                assert first.ok and second.ok
                assert v1 == v2 == 1
                assert len(svc.state("default").published.dataset) == 25
                hits = obs.registry().counter("retry.idempotent_hits")
                assert hits.value >= 1

        asyncio.run(main())

    def test_concurrent_duplicates_share_one_apply(self):
        async def main():
            async with DatasetService({"default": _dataset()}, _config()) as svc:
                results = await asyncio.gather(*[
                    svc.execute(_insert_spec("dup"), idem="k2")
                    for _ in range(4)
                ])
                versions = {version for _, version in results}
                assert versions == {1}
                assert len(svc.state("default").published.dataset) == 25

        asyncio.run(main())

    def test_recorded_result_survives_writer_death(self):
        async def main():
            plan = FaultPlan(seed=0, rules=(
                FaultRule(seam="writer.apply", hit=2, action="error"),
            ))
            with faults.installed(plan):
                async with DatasetService(
                    {"default": _dataset()}, _config()
                ) as svc:
                    first, v1 = await svc.execute(
                        _insert_spec("pre"), idem="seen"
                    )
                    assert first.ok
                    with pytest.raises(DatasetDegradedError):
                        await svc.execute(_insert_spec("boom"), idem="doomed")
                    # The applied-but-maybe-lost retry still resolves.
                    replay, v2 = await svc.execute(
                        _insert_spec("pre"), idem="seen"
                    )
                    assert replay.ok and v2 == v1
                    # A *new* mutation is refused, typed.
                    with pytest.raises(DatasetDegradedError):
                        await svc.execute(_insert_spec("post"), idem="fresh")

        asyncio.run(main())


# ----------------------------------------------------------------------
# degraded mode
# ----------------------------------------------------------------------
class TestDegradedMode:
    def test_writer_death_flips_read_only_degraded(self):
        async def main():
            plan = FaultPlan(seed=0, rules=(
                FaultRule(seam="writer.apply", hit=1, action="error"),
            ))
            config = _config(fault_plan=plan)
            deaths = obs.registry().counter("fault.writer_deaths")
            before = deaths.value
            async with ReproServer({"default": _dataset()}, config) as srv:
                async with await RemoteClient.connect(port=srv.port) as client:
                    with pytest.raises(DatasetDegradedError):
                        await client.insert(
                            "kill", samples=[[1.0, 1.0]], probabilities=[1.0]
                        )
                    # Reads keep answering from the published snapshot.
                    envelope = await client.prsq(Q, alpha=0.4)
                    assert envelope.ok
                    ping = await client.ping()
                    assert ping["degraded"] == ["default"]
                    assert ping["status"]["default"] == "degraded"
                    stats = await client.stats()
                    assert stats["service"]["degraded"] == ["default"]
                    info = stats["datasets"]["default"]
                    assert info["status"] == "degraded"
                    assert "degraded_reason" in info
                # HTTP surfaces the same contract as 503.
                from repro.api.registry import REGISTRY

                body = json.dumps(
                    {"spec": REGISTRY.spec_to_dict(_insert_spec("x"))}
                ).encode()
                status, payload = await _http(
                    srv.port,
                    b"POST /query HTTP/1.1\r\nContent-Length: "
                    + str(len(body)).encode()
                    + b"\r\nConnection: close\r\n\r\n" + body,
                )
                assert status == 503
                assert json.loads(payload)["error"]["code"] == "degraded"
            assert deaths.value == before + 1

        asyncio.run(main())


# ----------------------------------------------------------------------
# client retries
# ----------------------------------------------------------------------
class TestClientRetry:
    def test_policy_validates_and_jitters_deterministically(self):
        with pytest.raises(InvalidSpecError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidSpecError):
            RetryPolicy(base_s=0.5, cap_s=0.1)
        a = RetryPolicy(seed=9).schedule()
        b = RetryPolicy(seed=9).schedule()
        draws = [next(a) for _ in range(6)]
        assert draws == [next(b) for _ in range(6)]
        assert all(
            RetryPolicy().base_s <= d <= RetryPolicy().cap_s for d in draws
        )

    def test_overloaded_read_retries_to_success(self):
        async def main():
            config = _config(max_inflight=1, max_queue=0)
            async with ReproServer({"default": _dataset()}, config) as srv:
                policy = RetryPolicy(
                    max_attempts=6, base_s=0.05, cap_s=0.1, seed=1
                )
                async with await RemoteClient.connect(
                    port=srv.port, retry=policy
                ) as client:
                    await srv.service.admission.acquire()
                    retries = obs.registry().counter("retry.attempts")
                    before = retries.value

                    async def release_soon():
                        await asyncio.sleep(0.15)
                        srv.service.admission.release()

                    release = asyncio.ensure_future(release_soon())
                    envelope, _ = await client.query_envelope(
                        PRSQSpec(q=Q, alpha=0.4)
                    )
                    await release
                    assert envelope.ok
                    assert retries.value > before

        asyncio.run(main())

    def test_reconnects_after_injected_connection_drop(self):
        async def main():
            plan = FaultPlan(seed=0, rules=(
                FaultRule(seam="socket.read", hit=2, action="drop"),
            ))
            config = _config(fault_plan=plan)
            async with ReproServer({"default": _dataset()}, config) as srv:
                reconnects = obs.registry().counter("retry.reconnects")
                before = reconnects.value
                async with await RemoteClient.connect(
                    port=srv.port,
                    retry=RetryPolicy(base_s=0.01, cap_s=0.05, seed=2),
                ) as client:
                    first = await client.prsq(Q, alpha=0.4)
                    second = await client.prsq(Q, alpha=0.4)  # dropped, retried
                    assert first.value == second.value
                assert reconnects.value == before + 1

        asyncio.run(main())

    def test_pending_map_never_leaks(self):
        """Regression: a request cancelled mid-wait (or failed) must not
        leave its response queue in ``_pending`` forever."""

        async def main():
            async def black_hole(reader, writer):
                await reader.read()  # swallow everything, answer nothing

            server = await asyncio.start_server(
                black_hole, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                client = await RemoteClient.connect(port=port)
                task = asyncio.ensure_future(client.request({"op": "ping"}))
                await asyncio.sleep(0.05)
                assert len(client._pending) == 1
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                assert client._pending == {}
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(main())


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_stop_flushes_in_flight_streamed_batch(self):
        """SIGTERM (server.stop) mid-batch: the tail of the stream is
        flushed within drain_timeout_s and the socket closes cleanly —
        no reset, no truncated NDJSON line."""

        async def main():
            config = _config(drain_timeout_s=5.0)
            async with ReproServer({"default": _dataset()}, config) as srv:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port
                )
                specs = [
                    {"kind": "prsq", "q": [4.0 + 0.2 * i, 5.0], "alpha": 0.4}
                    for i in range(6)
                ]
                writer.write((json.dumps({
                    "id": 1, "op": "batch", "specs": specs,
                }) + "\n").encode())
                await writer.drain()
                first = json.loads(await reader.readline())
                assert first["seq"] == 0
                # Drain starts while five frames are still owed.
                stopper = asyncio.ensure_future(srv.stop())
                frames = []
                while True:
                    line = await asyncio.wait_for(reader.readline(), 5.0)
                    if not line:
                        break
                    frames.append(json.loads(line))
                await stopper
                writer.close()
                done = [f for f in frames if f.get("done")]
                seqs = [f["seq"] for f in frames if "seq" in f]
                assert seqs == list(range(1, 6))
                assert len(done) == 1 and done[0]["count"] == 6

        asyncio.run(main())


# ----------------------------------------------------------------------
# CLI failure contract
# ----------------------------------------------------------------------
class TestServeCli:
    def test_bind_failure_exits_2(self, tmp_path, capsys):
        from repro.io.cli import main as cli_main
        from repro.io import save_uncertain_csv

        path = tmp_path / "ds.csv"
        save_uncertain_csv(_dataset(n=6), path)
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            code = cli_main([
                "serve", "--data", str(path), "--port", str(port),
            ])
        finally:
            blocker.close()
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot bind")
        assert "Traceback" not in err

    def test_fault_plan_flag_parses(self, tmp_path):
        # An unparsable plan is a usage error before any socket work.
        from repro.io.cli import main as cli_main
        from repro.io import save_uncertain_csv

        path = tmp_path / "ds.csv"
        save_uncertain_csv(_dataset(n=6), path)
        code = cli_main([
            "serve", "--data", str(path), "--fault-plan", "not-a-plan",
        ])
        assert code == 1
