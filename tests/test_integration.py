"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    CPConfig,
    compute_causality,
    compute_causality_certain,
    naive_i,
    naive_ii,
    prsq_non_answers,
)
from repro.bench.harness import run_cp_batch, run_cr_batch
from repro.bench.workloads import (
    random_query,
    select_prsq_non_answers,
    select_rsq_non_answers,
)
from repro.datasets import (
    CARDB_QUERY,
    NBA_QUERY,
    NON_ANSWER_ID,
    STEVE_JOHN,
    generate_cardb,
    generate_certain_dataset,
    generate_nba,
    generate_uncertain_dataset,
    legend_names,
)
from repro.prsq.oracle import MembershipOracle


class TestNBAScenario:
    """Scaled-down Table-3 case study."""

    @pytest.fixture(scope="class")
    def nba(self):
        return generate_nba(n_players=400)

    def test_steve_john_causes_are_the_legends(self, nba):
        result = compute_causality(nba, STEVE_JOHN, NBA_QUERY, alpha=0.5)
        assert set(legend_names()) <= set(result.cause_ids())

    def test_responsibilities_vary(self, nba):
        result = compute_causality(nba, STEVE_JOHN, NBA_QUERY, alpha=0.5)
        assert len(set(round(r, 9) for r in result.responsibilities().values())) >= 2

    def test_witnesses_verify(self, nba):
        result = compute_causality(nba, STEVE_JOHN, NBA_QUERY, alpha=0.5)
        oracle = MembershipOracle(
            nba, STEVE_JOHN, NBA_QUERY, 0.5, relevant_ids=result.cause_ids()
        )
        for oid, cause in result.causes.items():
            assert oracle.is_contingency_set(cause.contingency_set, oid)


class TestCarDBScenario:
    """Scaled-down Table-4 case study."""

    @pytest.fixture(scope="class")
    def cardb(self):
        return generate_cardb(n=800)

    def test_pinned_causes_found(self, cardb):
        result = compute_causality_certain(cardb, NON_ANSWER_ID, CARDB_QUERY)
        cause_ids = set(result.cause_ids())
        assert {f"cause-{k:02d}" for k in range(10)} <= cause_ids

    def test_equal_responsibility(self, cardb):
        result = compute_causality_certain(cardb, NON_ANSWER_ID, CARDB_QUERY)
        values = set(result.responsibilities().values())
        assert len(values) == 1
        assert values.pop() == pytest.approx(1.0 / len(result))

    def test_naive_ii_agrees(self, cardb):
        cr = compute_causality_certain(cardb, NON_ANSWER_ID, CARDB_QUERY)
        nv = naive_ii(cardb, NON_ANSWER_ID, CARDB_QUERY)
        assert cr.same_causality(nv)


class TestSyntheticPipelines:
    def test_uncertain_pipeline(self):
        ds = generate_uncertain_dataset(250, 2, radius_range=(0, 120), seed=6)
        q = random_query(2, seed=6)
        picks = select_prsq_non_answers(
            ds, q, alpha=0.5, count=4, max_candidates=10, seed=6
        )
        batch = run_cp_batch(ds, q, 0.5, picks)
        assert batch.aggregate.count == 4
        for result in batch.results:
            assert len(result) >= 1

    def test_naive_i_equivalence_on_workload(self):
        ds = generate_uncertain_dataset(200, 2, radius_range=(0, 150), seed=7)
        q = random_query(2, seed=7)
        picks = select_prsq_non_answers(
            ds, q, alpha=0.6, count=3, max_candidates=9, seed=7
        )
        for an in picks:
            a = compute_causality(ds, an, q, 0.6)
            b = naive_i(ds, an, q, 0.6)
            assert a.same_causality(b)

    def test_certain_pipeline_all_distributions(self):
        q = random_query(2, seed=8)
        for distribution in ("independent", "correlated", "anticorrelated", "clustered"):
            ds = generate_certain_dataset(300, 2, distribution=distribution, seed=8)
            picks = select_rsq_non_answers(ds, q, count=3, seed=8)
            batch = run_cr_batch(ds, q, picks)
            assert batch.aggregate.count == 3

    def test_alpha_sweep_runs(self):
        ds = generate_uncertain_dataset(150, 2, radius_range=(0, 120), seed=9)
        q = random_query(2, seed=9)
        picks = select_prsq_non_answers(
            ds, q, alpha=0.2, count=3, max_candidates=10, seed=9
        )
        for alpha in (0.2, 0.4, 0.6, 0.8, 1.0):
            batch = run_cp_batch(ds, q, alpha, picks)
            # picks are non-answers at alpha=0.2, hence at every larger alpha
            assert batch.aggregate.count == 3

    def test_dimensionality_sweep_runs(self):
        for d in (2, 3, 4):
            ds = generate_uncertain_dataset(120, d, radius_range=(0, 150), seed=10)
            q = random_query(d, seed=10)
            try:
                picks = select_prsq_non_answers(
                    ds, q, alpha=0.5, count=2, max_candidates=10, seed=10
                )
            except ValueError:
                continue  # high dims may have too few bounded non-answers
            batch = run_cp_batch(ds, q, 0.5, picks)
            assert batch.aggregate.count == len(picks)


class TestPublicAPI:
    def test_star_import_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_prsq_non_answers_roundtrip(self):
        ds = generate_uncertain_dataset(60, 2, radius_range=(0, 200), seed=11)
        q = random_query(2, seed=11)
        nas = prsq_non_answers(ds, q, 0.5)
        if not nas:
            pytest.skip("no non-answers in draw")
        res = compute_causality(ds, nas[0], q, 0.5, config=CPConfig())
        assert res.an_oid == nas[0]
