"""Property-based tests for the extension queries' closed-form causality."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.rtopk.causality import (
    brute_force_causality_rtopk,
    compute_causality_rtopk,
)
from repro.rtopk.query import WeightSet, rank_of_query
from repro.skyline.skyband import (
    compute_causality_k_skyband,
    dominators_of_query,
    reverse_k_skyband,
)
from repro.uncertain.dataset import CertainDataset

coordinate = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
point2d = st.tuples(coordinate, coordinate)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

certain_points = st.lists(point2d, min_size=3, max_size=9, unique=True)


class TestSkybandProperties:
    @SLOW
    @given(certain_points, point2d, st.integers(min_value=1, max_value=3))
    def test_band_nesting(self, points, q, k):
        ds = CertainDataset(np.array(points))
        q = np.array(q)
        smaller = set(reverse_k_skyband(ds, q, k))
        larger = set(reverse_k_skyband(ds, q, k + 1))
        assert smaller <= larger

    @SLOW
    @given(certain_points, point2d, st.integers(min_value=1, max_value=3))
    def test_causality_closed_form_properties(self, points, q, k):
        ds = CertainDataset(np.array(points))
        q = np.array(q)
        an = ds.ids()[0]
        dominators = dominators_of_query(ds, an, q)
        assume(len(dominators) >= k)
        result = compute_causality_k_skyband(ds, an, q, k=k)
        m = len(dominators)
        assert set(result.cause_ids()) == set(dominators)
        for cause in result.causes.values():
            assert cause.responsibility == pytest.approx(1.0 / (m - k + 1))
            assert len(cause.contingency_set) == m - k
            assert cause.oid not in cause.contingency_set
            assert cause.contingency_set <= set(dominators)

    @SLOW
    @given(certain_points, point2d)
    def test_k1_responsibilities_match_cr(self, points, q):
        from repro.core.cr import compute_causality_certain
        from repro.exceptions import NotANonAnswerError

        ds = CertainDataset(np.array(points))
        q = np.array(q)
        an = ds.ids()[0]
        try:
            cr = compute_causality_certain(ds, an, q)
        except NotANonAnswerError:
            assume(False)
        band = compute_causality_k_skyband(ds, an, q, k=1)
        assert cr.same_causality(band)


class TestRTopKProperties:
    @SLOW
    @given(
        st.lists(point2d, min_size=3, max_size=8, unique=True),
        st.lists(
            st.tuples(
                st.floats(min_value=0.05, max_value=1.0),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=3,
        ),
        point2d,
        st.integers(min_value=1, max_value=3),
    )
    def test_matches_brute_force(self, points, weights, q, k):
        products = CertainDataset(np.array(points))
        users = WeightSet(np.array(weights))
        q = np.array(q)
        for user in users.ids:
            rank = rank_of_query(products, users.vector(user), q)
            if rank <= k:
                continue
            fast = compute_causality_rtopk(products, users, user, q, k)
            brute = brute_force_causality_rtopk(products, users, user, q, k)
            assert fast.same_causality(brute)

    @SLOW
    @given(
        st.lists(point2d, min_size=4, max_size=9, unique=True),
        st.tuples(
            st.floats(min_value=0.05, max_value=1.0),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        point2d,
    )
    def test_rank_monotone_in_k(self, points, weight, q):
        products = CertainDataset(np.array(points))
        users = WeightSet([weight])
        q = np.array(q)
        rank = rank_of_query(products, users.vector(users.ids[0]), q)
        # q is an answer exactly for k >= rank.
        from repro.rtopk.query import reverse_top_k

        for k in range(1, len(points) + 2):
            members = reverse_top_k(products, users, q, k)
            assert (users.ids[0] in members) == (k >= rank)
