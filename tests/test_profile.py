"""Unit tests for dataset profiling."""

import numpy as np
import pytest

from repro.bench.profile import DatasetProfile, dominance_density, profile_dataset
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.uncertain.dataset import CertainDataset
from tests.conftest import make_uncertain_dataset


class TestProfileDataset:
    def test_basic_fields(self, rng):
        ds = make_uncertain_dataset(rng, n=20, dims=2, max_samples=3)
        profile = profile_dataset(ds)
        assert profile.cardinality == 20
        assert profile.dims == 2
        assert 1.0 <= profile.mean_samples <= 3.0
        assert profile.max_samples <= 3
        assert profile.skyline_size >= 1

    def test_dominators_estimated_with_q(self, rng):
        ds = make_uncertain_dataset(rng, n=30, dims=2)
        q = rng.uniform(0, 10, size=2)
        profile = profile_dataset(ds, q=q, dominator_samples=10)
        assert profile.mean_dominators is not None
        assert profile.mean_dominators >= 0.0

    def test_no_q_no_dominators(self, rng):
        ds = make_uncertain_dataset(rng, n=10, dims=2)
        assert profile_dataset(ds).mean_dominators is None

    def test_mbr_margin_grows_with_radius(self):
        small = generate_uncertain_dataset(100, 2, radius_range=(0, 10), seed=1)
        large = generate_uncertain_dataset(100, 2, radius_range=(0, 100), seed=1)
        assert (
            profile_dataset(large).mean_mbr_margin
            > profile_dataset(small).mean_mbr_margin
        )

    def test_skyline_size_reflects_correlation(self):
        correlated = generate_certain_dataset(
            800, 2, distribution="correlated", seed=2
        )
        anticorrelated = generate_certain_dataset(
            800, 2, distribution="anticorrelated", seed=2
        )
        assert (
            profile_dataset(correlated).skyline_size
            < profile_dataset(anticorrelated).skyline_size
        )

    def test_as_row_is_flat(self, rng):
        ds = make_uncertain_dataset(rng, n=10, dims=2)
        row = profile_dataset(ds).as_row()
        assert set(row) == {"n", "d", "samples/obj", "mbr margin", "skyline", "dominators"}


class TestDominanceDensity:
    def test_correlated_denser_than_anticorrelated(self):
        correlated = generate_certain_dataset(
            500, 2, distribution="correlated", seed=3
        )
        anticorrelated = generate_certain_dataset(
            500, 2, distribution="anticorrelated", seed=3
        )
        assert dominance_density(correlated) > dominance_density(anticorrelated)

    def test_single_point_zero(self):
        assert dominance_density(CertainDataset([[1.0, 1.0]])) == 0.0

    def test_in_unit_interval(self, rng):
        ds = CertainDataset(rng.uniform(0, 10, size=(50, 3)))
        assert 0.0 <= dominance_density(ds) <= 1.0
