"""Unit tests for reverse top-k queries and their non-answer causality."""

import numpy as np
import pytest

from repro.exceptions import NotANonAnswerError
from repro.rtopk.causality import (
    brute_force_causality_rtopk,
    compute_causality_rtopk,
)
from repro.rtopk.query import (
    WeightSet,
    better_products,
    rank_of_query,
    rank_profile,
    reverse_top_k,
    score,
    top_k_products,
)
from repro.uncertain.dataset import CertainDataset


@pytest.fixture
def products():
    # Prices/weights chosen so ranks are easy to read off.
    return CertainDataset(
        [[1.0, 9.0], [2.0, 2.0], [9.0, 1.0], [5.0, 5.0], [8.0, 8.0]],
        ids=["a", "b", "c", "d", "e"],
    )


@pytest.fixture
def users():
    return WeightSet(
        [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]], ids=["x-only", "y-only", "balanced"]
    )


class TestWeightSet:
    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightSet([[1.0, -0.5]])

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            WeightSet([[0.0, 0.0]])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            WeightSet([[1.0, 0.0], [0.0, 1.0]], ids=["u", "u"])

    def test_id_count_mismatch(self):
        with pytest.raises(ValueError):
            WeightSet([[1.0, 0.0]], ids=["u", "v"])

    def test_vector_lookup(self, users):
        assert users.vector("balanced").tolist() == [0.5, 0.5]


class TestQuery:
    def test_score(self):
        assert score(np.array([0.5, 0.5]), np.array([4.0, 6.0])) == 5.0

    def test_better_products(self, products, users):
        # x-only user: scores are the x coordinates.
        q = [3.0, 3.0]
        assert better_products(products, users.vector("x-only"), q) == ["a", "b"]

    def test_tie_resolved_for_q(self, products, users):
        q = [2.0, 7.0]  # ties product b on x
        assert "b" not in better_products(products, users.vector("x-only"), q)

    def test_rank(self, products, users):
        assert rank_of_query(products, users.vector("x-only"), [3.0, 3.0]) == 3

    def test_reverse_top_k(self, products, users):
        q = [3.0, 3.0]
        # ranks: x-only -> 3, y-only -> 3, balanced: score 3 beats b(2)?
        # balanced scores: a=5, b=2, c=5, d=5, e=8; q=3 -> rank 2.
        assert reverse_top_k(products, users, q, k=2) == ["balanced"]
        assert sorted(reverse_top_k(products, users, q, k=3)) == [
            "balanced",
            "x-only",
            "y-only",
        ]

    def test_top_k_products(self, products, users):
        assert top_k_products(products, users.vector("balanced"), 2) == ["b", "a"]

    def test_rank_profile(self, products, users):
        profile = rank_profile(products, users, [3.0, 3.0])
        assert profile == {"x-only": 3, "y-only": 3, "balanced": 2}

    def test_invalid_k(self, products, users):
        with pytest.raises(ValueError):
            reverse_top_k(products, users, [3.0, 3.0], k=0)
        with pytest.raises(ValueError):
            top_k_products(products, users.vector("balanced"), 0)


class TestCausality:
    def test_closed_form(self, products, users):
        # x-only user, k=1: blockers a(1) and b(2); rank 3 -> need = 1.
        res = compute_causality_rtopk(products, users, "x-only", [3.0, 3.0], k=1)
        assert res.cause_ids() == ["a", "b"]
        for oid in res.cause_ids():
            assert res.responsibility(oid) == pytest.approx(0.5)

    def test_counterfactual_when_rank_k_plus_one(self, products, users):
        res = compute_causality_rtopk(products, users, "x-only", [3.0, 3.0], k=2)
        for cause in res.causes.values():
            assert cause.responsibility == 1.0
            assert not cause.contingency_set

    def test_answer_rejected(self, products, users):
        with pytest.raises(NotANonAnswerError):
            compute_causality_rtopk(products, users, "balanced", [3.0, 3.0], k=2)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_brute_force(self, seed, k):
        rng = np.random.default_rng(seed)
        products = CertainDataset(rng.uniform(0, 10, size=(8, 2)))
        users = WeightSet(rng.uniform(0.1, 1.0, size=(4, 2)))
        q = rng.uniform(0, 10, size=2)
        for user_id in users.ids:
            if rank_of_query(products, users.vector(user_id), q) <= k:
                continue
            fast = compute_causality_rtopk(products, users, user_id, q, k)
            brute = brute_force_causality_rtopk(products, users, user_id, q, k)
            assert fast.same_causality(brute)

    def test_witness_sets_have_exact_size(self, products, users):
        res = compute_causality_rtopk(products, users, "x-only", [3.0, 3.0], k=1)
        for cause in res.causes.values():
            assert len(cause.contingency_set) == 1
            assert cause.oid not in cause.contingency_set

    def test_brute_force_cap(self, users):
        rng = np.random.default_rng(0)
        big = CertainDataset(rng.uniform(0, 10, size=(20, 2)))
        with pytest.raises(ValueError):
            brute_force_causality_rtopk(big, users, "x-only", [3.0, 3.0], 1)
