"""Legacy setup shim.

The sandboxed environment has setuptools but no ``wheel`` package and no
network, so PEP-517 editable installs fail with ``invalid command
'bdist_wheel'``.  This shim lets ``python setup.py develop`` /
``pip install -e . --no-build-isolation`` fall back to the legacy path.
Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
